package core

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"servdisc/internal/netaddr"
	"servdisc/internal/obs"
	"servdisc/internal/packet"
	"servdisc/internal/pipeline"
)

// EngineMetrics is the telemetry bundle a ShardedPassive reports into.
// Every field is optional (nil histograms and recorders are no-ops);
// the bundle itself may be nil, which skips the clock reads entirely so
// an uninstrumented engine pays nothing.
type EngineMetrics struct {
	// Dispatch observes the partition+scatter time of each HandleBatch
	// call (inline mode also includes the shard applies).
	Dispatch *obs.Histogram
	// Apply observes per-sub-batch shard apply time on the workers.
	Apply *obs.Histogram
	// Snapshot observes the freeze+merge time of each snapshot actually
	// built (the zero-churn cache fast path is deliberately untimed — it
	// must stay allocation- and work-free).
	Snapshot *obs.Histogram
	// Flight receives batch-dispatched (sampled 1/obs.BatchSample),
	// snapshot-sealed and expiry-sweep trace events.
	Flight *obs.Recorder
}

// ShardedPassive partitions passive discovery across N worker-owned
// PassiveDiscoverer shards, so ingest scales with cores while the merged
// result stays byte-for-byte identical to a single-threaded run.
//
// Every packet the discoverer cares about touches state keyed by exactly
// one address — the "owner":
//
//   - a SYN-ACK (or a server-sourced UDP datagram) updates the service
//     record of its campus source;
//   - an inbound SYN updates the scan tracker of its external source;
//   - an outbound RST updates the scan tracker of its external destination.
//
// Routing each packet to hash(owner) therefore confines all mutable state
// for any address to a single shard: shard maps are disjoint by
// construction and Merge is a plain union, no conflict resolution needed.
// The one piece of cross-shard state — the scan detector's tumbling-window
// origin, which a lone discoverer picks lazily from the first scan-relevant
// packet — is seeded identically into every shard by the dispatcher
// (shard-then-merge determinism).
//
// Lifecycle mirrors the pipeline runner: before Run, HandleBatch processes
// sub-batches inline on the caller's goroutine (deterministic, zero
// goroutines); after Run(ctx), sub-batches go to per-shard queues drained
// by worker goroutines that own their shard exclusively. Flush waits for
// the queues to drain; Close shuts the workers down.
//
// Snapshot is non-terminal and safe to call at any point, including while
// workers are ingesting: it freezes a consistent point-in-time Inventory
// without stopping the producer (see Snapshot). The engine also publishes
// a typed event stream — Subscribe delivers ServiceDiscovered and
// ScannerDetected events as the shards learn them.
type ShardedPassive struct {
	campus netaddr.Prefix
	shards []*passiveShard

	// scratch holds per-shard sub-batches during partitioning.
	scratch [][]packet.Packet

	// originSeeded flips once the first scan-relevant packet fixes every
	// shard's detection-window origin.
	originSeeded bool

	// events is the engine's typed discovery event stream; every shard's
	// discovery and detection hooks publish into it.
	events *eventStream

	// dispatchMu serializes batch dispatch (partition + enqueue/apply)
	// against snapshot-point insertion, so a snapshot never lands in the
	// middle of one batch's scatter across the shard queues: every batch
	// is entirely before or entirely after the snapshot point.
	dispatchMu sync.Mutex

	// snapMu serializes whole snapshots (freeze + merge) against each
	// other. Sealed shard views are patched in place at each freeze, so a
	// merge must finish reading them before the next freeze runs; holding
	// snapMu across the critical section guarantees it, because freezes
	// only ever happen on behalf of a snapshot. Hybrid.Snapshot shares
	// this lock for the same reason.
	snapMu sync.Mutex

	// onSnap, when set, observes every newly built snapshot with its
	// delta (see OnSnapshot). Guarded by snapMu.
	onSnap func(prev, inv *Inventory, delta SnapshotDelta)

	// dispatched counts batch dispatches that reached any shard. The
	// cached Inventory remembers the count it froze at; while it is
	// unchanged, Snapshot returns the cache without touching the shards
	// at all — the zero-churn fast path.
	dispatched atomic.Uint64

	// Retention (retention.go). watermark is the maximum packet timestamp
	// ever dispatched — the observation clock expiry deadlines are
	// measured against. Maintained (under dispatchMu) only while retention
	// is on, so the partition loop stays branch-cheap when it is off.
	retention   RetentionPolicy
	retentionOn bool
	watermark   time.Time

	mu       sync.RWMutex
	running  bool
	closed   bool
	ctx      context.Context
	queues   []chan shardMsg
	workers  sync.WaitGroup
	inflight sync.WaitGroup

	// batchPool recycles the worker-queue copies of dispatched sub-batches.
	batchPool sync.Pool

	// snap caches the whole Inventory while no shard changes between
	// snapshots.
	snap snapCache

	// counters: In = packets offered, Out = packets dispatched to shards.
	counters pipeline.StageCounters

	// met is the optional telemetry bundle (see SetMetrics).
	met *EngineMetrics
}

// snapCache reuses a frozen Inventory for as long as its generation
// vector is unchanged, and doubles as the base the next snapshot patches
// its deltas onto. Safe for concurrent snapshotters.
type snapCache struct {
	mu   sync.Mutex
	gens []uint64
	inv  *Inventory
	// dispatched and agen fingerprint the engine state the cache froze at
	// for the lock-free fast path: while no batch has been dispatched and
	// no report applied since, the cache is trivially current.
	dispatched uint64
	agen       uint64
}

// fast returns the cached Inventory when the engine fingerprint is
// unchanged — the zero-churn path, no shard traffic, no allocation.
func (c *snapCache) fast(dispatched, agen uint64) *Inventory {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.inv != nil && c.dispatched == dispatched && c.agen == agen {
		return c.inv
	}
	return nil
}

// get returns the cached Inventory for exactly this generation vector,
// nil otherwise.
func (c *snapCache) get(gens []uint64) *Inventory {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.inv == nil || len(c.gens) != len(gens) {
		return nil
	}
	for i := range gens {
		if c.gens[i] != gens[i] {
			return nil
		}
	}
	return c.inv
}

// peek returns the previous snapshot and its generation vector — the base
// for delta patching.
func (c *snapCache) peek() ([]uint64, *Inventory) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gens, c.inv
}

func (c *snapCache) put(gens []uint64, inv *Inventory, dispatched, agen uint64) {
	c.mu.Lock()
	c.gens, c.inv, c.dispatched, c.agen = gens, inv, dispatched, agen
	c.mu.Unlock()
}

// invalidate drops the cached Inventory — checkpoint restore mutates
// shard state without moving the dispatch fingerprint, so any inventory
// frozen before the import must not be served after it.
func (c *snapCache) invalidate() {
	c.mu.Lock()
	c.gens, c.inv = nil, nil
	c.mu.Unlock()
}

// maxSealDeltas bounds the per-shard seal-delta history. Snapshot cadences
// that outrun it (more distinct freeze points between two merges than the
// ring holds) fall back to a full re-merge, never to a wrong one.
const maxSealDeltas = 32

// passiveShard is one worker-owned shard: the discoverer, its mutation
// generation, the cached frozen view, and the recent seal-delta history.
// All are touched only by the shard's owner — the worker goroutine while
// running, the dispatcher (under dispatchMu) inline and after shutdown.
type passiveShard struct {
	disc *PassiveDiscoverer
	// gen counts batches applied; a snapshot taken at the same gen can
	// reuse the previously frozen view untouched.
	gen  uint64
	view *shardView
	// deltas chain the recent seals (youngest last) so mergeViewsDelta can
	// patch a previous merged snapshot forward instead of rebuilding.
	deltas []sealDelta
}

// shardView is one shard's frozen point-in-time state: the sealed
// copy-on-write view of the inventory-facing maps plus the shard's scanner
// detections as of the freeze. Shard state is disjoint by owner address,
// so per-shard detection results concatenate into exactly the merged
// tracker's output.
type shardView struct {
	gen      uint64
	disc     *PassiveDiscoverer
	scanners []ScannerInfo
	// expired holds the shard's pending expiries drained at this freeze;
	// the snapshot that merges the views publishes and clears them (views
	// are cached and reused — clearing prevents double emission).
	expired []expiredSvc
}

// apply ingests one sub-batch and advances the generation.
func (sh *passiveShard) apply(batch []packet.Packet) {
	sh.disc.HandleBatch(batch)
	sh.gen++
}

// freeze returns the shard's frozen view, sealing (O(records touched
// since the last seal)) only if the shard changed since the last freeze.
// wm is the engine watermark at the snapshot point: deadlines at or before
// it expire first (generation-bumping, so the seal below picks them up).
func (sh *passiveShard) freeze(wm time.Time) *shardView {
	if sh.disc.expireDue(wm) {
		sh.gen++
	}
	if sh.view == nil || sh.view.gen != sh.gen {
		var prevGen uint64
		if sh.view != nil {
			prevGen = sh.view.gen
		}
		sealed, delta := sh.disc.sealView()
		delta.gen, delta.prevGen = sh.gen, prevGen
		sh.deltas = append(sh.deltas, delta)
		if len(sh.deltas) > maxSealDeltas {
			sh.deltas = append(sh.deltas[:0], sh.deltas[len(sh.deltas)-maxSealDeltas:]...)
		}
		sh.view = &shardView{
			gen:      sh.gen,
			disc:     sealed,
			scanners: sh.disc.DetectScanners(),
		}
	}
	// Pending expiries imply a generation change (expiry bumps it, observe-
	// side splits ride a batch), so the view holding them is always fresh.
	if exp := sh.disc.takePendingExpired(); len(exp) > 0 {
		sh.view.expired = append(sh.view.expired, exp...)
	}
	return sh.view
}

// deltasBetween collects the seal deltas spanning (fromGen, toGen],
// youngest first, by walking the prevGen chain. ok is false when the
// chain cannot be reconstructed — history evicted, or a full (untracked)
// seal in the span — in which case the caller must re-merge from scratch.
func (sh *passiveShard) deltasBetween(fromGen, toGen uint64) (out []sealDelta, ok bool) {
	want := toGen
	for i := len(sh.deltas) - 1; i >= 0; i-- {
		if want == fromGen {
			return out, true
		}
		d := sh.deltas[i]
		if d.gen != want {
			continue
		}
		if d.full {
			return nil, false
		}
		out = append(out, d)
		want = d.prevGen
	}
	return out, want == fromGen
}

// shardMsg is one entry of a shard queue: a sub-batch to apply (batch
// points into a pooled buffer the worker recycles), a snapshot marker to
// answer, or a checkpoint-export request (exactly one field is set).
// Markers flow through the same queue as batches, so both snapshot and
// export points always fall at whole-batch boundaries of the producer's
// stream.
type shardMsg struct {
	batch *[]packet.Packet
	snap  chan<- *shardView
	ckpt  *shardExportReq
	// wm carries the engine watermark captured at the snapshot point
	// (snap markers only).
	wm time.Time
}

// NewShardedPassive builds a discoverer sharded n ways (n < 1 is treated
// as 1). campus and udpPorts are as in NewPassiveDiscoverer.
func NewShardedPassive(campus netaddr.Prefix, udpPorts []uint16, n int) *ShardedPassive {
	if n < 1 {
		n = 1
	}
	s := &ShardedPassive{
		campus:  campus,
		shards:  make([]*passiveShard, n),
		scratch: make([][]packet.Packet, n),
		events:  newEventStream(),
	}
	for i := range s.shards {
		d := NewPassiveDiscoverer(campus, udpPorts)
		d.onService = s.events.passiveDiscovered
		d.onRetire = s.events.retirePassive
		d.track.onDetect = s.events.scannerDetected
		s.shards[i] = &passiveShard{disc: d}
	}
	return s
}

// SetRetention configures TTL expiry, seeding deadlines for anything the
// shards already hold (so it composes with checkpoint restore in either
// order). Call before Run and before ingest begins.
func (s *ShardedPassive) SetRetention(p RetentionPolicy) {
	s.dispatchMu.Lock()
	defer s.dispatchMu.Unlock()
	s.retention = p
	s.retentionOn = p.Enabled()
	for _, sh := range s.shards {
		sh.disc.setRetention(p.PassiveTTL)
	}
}

// NumShards returns the shard count.
func (s *ShardedPassive) NumShards() int { return len(s.shards) }

// Counters exposes ingest counters (safe for concurrent readers).
func (s *ShardedPassive) Counters() *pipeline.StageCounters { return &s.counters }

// EventCounters exposes the event stream's flow counters (published /
// delivered / dropped), safe for concurrent readers.
func (s *ShardedPassive) EventCounters() *pipeline.StageCounters { return s.events.hub.Counters() }

// Subscribe attaches a bounded subscriber to the engine's discovery event
// stream (buffer capacity buf). Events that do not fit the buffer are
// dropped for that subscriber and counted — a slow consumer loses events,
// it never stalls ingest. The channel closes when the engine closes or the
// subscription is cancelled.
func (s *ShardedPassive) Subscribe(buf int) *EventSub { return s.events.hub.Subscribe(buf) }

// SubscribeFiltered is Subscribe with a predicate pushed down into the
// hub's publish path: events keep rejects are never delivered and never
// consume the subscriber's drop budget, so a consumer watching one port
// does not pay for the whole stream. keep runs on publishing goroutines —
// it must be fast and safe for concurrent calls.
func (s *ShardedPassive) SubscribeFiltered(buf int, keep func(Event) bool) *EventSub {
	return s.events.hub.SubscribeFunc(buf, keep)
}

// ownerAddr returns the address whose state the packet would mutate; for
// packets the discoverer ignores it falls back to the source, which keeps
// routing deterministic without affecting results.
func (s *ShardedPassive) ownerAddr(p *packet.Packet) netaddr.V4 {
	// Mirrors the case order of PassiveDiscoverer.handleTCP exactly.
	if p.Has(packet.LayerTypeTCP) {
		fl := p.TCP.Flags
		switch {
		case fl.Has(packet.FlagSYN | packet.FlagACK):
			return p.IPv4.Src // service record of the campus source
		case fl.Has(packet.FlagSYN):
			return p.IPv4.Src // scan state of the external source
		case fl.Has(packet.FlagRST):
			return p.IPv4.Dst // scan state of the external destination
		}
	}
	return p.IPv4.Src // UDP service records key on the source too
}

// scanRelevant mirrors PassiveDiscoverer.handleTCP's tracker-touching
// cases: the first such packet in the stream fixes the detection-window
// origin.
func (s *ShardedPassive) scanRelevant(p *packet.Packet) bool {
	if !p.Has(packet.LayerTypeTCP) {
		return false
	}
	fl := p.TCP.Flags
	srcIn := s.campus.Contains(p.IPv4.Src)
	dstIn := s.campus.Contains(p.IPv4.Dst)
	switch {
	case fl.Has(packet.FlagSYN | packet.FlagACK):
		return false
	case fl.Has(packet.FlagSYN):
		return dstIn && !srcIn
	case fl.Has(packet.FlagRST):
		return srcIn && !dstIn
	}
	return false
}

// shardOf hashes the owner address to a shard.
func (s *ShardedPassive) shardOf(addr netaddr.V4) int {
	h := uint32(addr)
	h ^= h >> 16
	h *= 0x7FEB352D
	h ^= h >> 15
	h *= 0x846CA68B
	h ^= h >> 16
	return int(h % uint32(len(s.shards)))
}

// SetMetrics attaches the telemetry bundle. Call before any traffic or
// snapshots flow (it is read without synchronization on the hot paths);
// nil detaches. Typically wired by the facade, not called directly.
func (s *ShardedPassive) SetMetrics(m *EngineMetrics) { s.met = m }

// seedOrigins pins every shard's scan-window origin to t.
func (s *ShardedPassive) seedOrigins(t time.Time) {
	for _, sh := range s.shards {
		sh.disc.seedScanOrigin(t)
	}
	s.originSeeded = true
}

// HandleBatch implements pipeline.BatchSink. Partitioning runs on the
// caller's goroutine; shard processing runs inline (before Run) or on the
// shard's worker (after Run). A single producer at a time; Snapshot (and
// only Snapshot) may run concurrently with the producer.
func (s *ShardedPassive) HandleBatch(batch []packet.Packet) {
	if len(batch) == 0 {
		return
	}
	s.counters.AddIn(len(batch))
	var t0 time.Time
	if s.met != nil {
		t0 = time.Now()
	}

	s.dispatchMu.Lock()
	defer s.dispatchMu.Unlock()
	for i := range s.scratch {
		s.scratch[i] = s.scratch[i][:0]
	}
	for i := range batch {
		p := &batch[i]
		if !s.originSeeded && s.scanRelevant(p) {
			s.seedOrigins(p.Timestamp)
		}
		if s.retentionOn && p.Timestamp.After(s.watermark) {
			s.watermark = p.Timestamp
		}
		idx := s.shardOf(s.ownerAddr(p))
		s.scratch[idx] = append(s.scratch[idx], *p)
	}

	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		s.counters.AddDropped(len(batch))
		return
	}
	d := s.dispatched.Add(1)
	for idx, sub := range s.scratch {
		if len(sub) == 0 {
			continue
		}
		s.counters.AddOut(len(sub))
		if !s.running {
			s.shards[idx].apply(sub)
			continue
		}
		cp := s.getBatchBuf(len(sub))
		copy(*cp, sub)
		s.inflight.Add(1)
		s.queues[idx] <- shardMsg{batch: cp}
	}
	if m := s.met; m != nil {
		m.Dispatch.Observe(time.Since(t0))
		if d%obs.BatchSample == 0 {
			m.Flight.Record(obs.TraceBatchDispatched, "", int64(len(batch)), int64(d))
		}
	}
}

// getBatchBuf takes a sub-batch copy buffer from the pool (workers return
// theirs after applying), trimming ingest-path allocations to the rare
// capacity misses. The pool holds pointers so Put never boxes a header.
func (s *ShardedPassive) getBatchBuf(n int) *[]packet.Packet {
	if v := s.batchPool.Get(); v != nil {
		if bp := v.(*[]packet.Packet); cap(*bp) >= n {
			*bp = (*bp)[:n]
			return bp
		}
	}
	buf := make([]packet.Packet, n, max(n, pipeline.DefaultBatchSize))
	return &buf
}

// HandlePacket implements the legacy per-packet Sink contract.
func (s *ShardedPassive) HandlePacket(p *packet.Packet) {
	one := [1]packet.Packet{*p}
	s.HandleBatch(one[:])
}

// Run starts one worker goroutine per shard. The context is an abort
// lever, not a graceful stop: after cancellation, queued sub-batches are
// drained without being applied (so Flush and Close never deadlock), and
// because each worker observes cancellation independently the shard state
// no longer corresponds to any prefix of the input — treat the run as
// abandoned and discard its results. For a clean shutdown, stop producing
// and call Close. No-op when already running or closed.
func (s *ShardedPassive) Run(ctx context.Context) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.running || s.closed {
		return
	}
	s.running = true
	s.ctx = ctx
	s.queues = make([]chan shardMsg, len(s.shards))
	for i := range s.shards {
		q := make(chan shardMsg, 64)
		s.queues[i] = q
		sh := s.shards[i]
		s.workers.Add(1)
		go func() {
			defer s.workers.Done()
			for msg := range q {
				if msg.snap != nil {
					// Snapshot marker: everything enqueued before it has
					// been applied, so the frozen view is exactly the
					// shard's state at the marker's dispatch point.
					msg.snap <- sh.freeze(msg.wm)
					continue
				}
				if msg.ckpt != nil {
					// Checkpoint-export marker: same boundary guarantee as
					// a snapshot marker; the copy-out runs on the worker,
					// so live-only state (peers, tracker) is read race-free.
					msg.ckpt.out <- sh.exportState(msg.ckpt)
					continue
				}
				if s.ctx.Err() == nil {
					if m := s.met; m != nil {
						t := time.Now()
						sh.apply(*msg.batch)
						m.Apply.Observe(time.Since(t))
					} else {
						sh.apply(*msg.batch)
					}
				}
				s.batchPool.Put(msg.batch)
				s.inflight.Done()
			}
		}()
	}
}

// Flush blocks until every sub-batch enqueued before the call has been
// applied to its shard. Synchronous mode: no-op. Flush must not race with
// a concurrent producer (Snapshot needs no Flush and has no such
// restriction).
func (s *ShardedPassive) Flush() { s.inflight.Wait() }

// Close flushes and stops the workers, then closes the event stream (so
// subscriber channels end); idempotent. After Close the discoverer is
// read-only: further HandleBatch calls are dropped, Snapshot keeps
// working.
func (s *ShardedPassive) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	running, queues := s.running, s.queues
	s.mu.Unlock()
	if running {
		for _, q := range queues {
			close(q)
		}
		s.workers.Wait()
	}
	s.events.close()
}

// Merge unions the shards into a single PassiveDiscoverer equivalent to
// one that consumed the whole stream sequentially. Shard state is keyed by
// owner address, so the union has no conflicts. The merged discoverer
// shares record structures with the shards — treat it as a view and do not
// feed more traffic into either side; for a stable result that tolerates
// further ingest, use Snapshot. Merge flushes pending work first (callers
// must stop producing before merging).
func (s *ShardedPassive) Merge() *PassiveDiscoverer {
	s.Flush()
	m := NewPassiveDiscoverer(s.campus, nil)
	m.udpPorts = s.shards[0].disc.udpPorts
	for _, sh := range s.shards {
		d := sh.disc
		m.Packets += d.Packets
		for k, rec := range d.services {
			m.services[k] = rec
		}
		for a, ts := range d.addrTimes {
			m.addrTimes[a] = ts
		}
		for k, at := range d.tombs {
			m.tombs[k] = at
		}
		m.track.mergeFrom(d.track)
	}
	return m
}

// snapshotViews captures every shard's frozen view at one consistent
// point, plus the dispatch count at that point (the cache fingerprint).
// While workers run, a snapshot marker is enqueued on every shard queue
// under the dispatch lock — atomically with respect to batch scatter, so
// the snapshot point falls exactly between two whole batches of the
// producer's stream; each worker freezes after applying everything
// enqueued before its marker. Inline (or after Close) the freeze happens
// directly under the dispatch lock. Unchanged shards reuse their cached
// frozen view; changed shards seal in O(churn). Callers must hold snapMu.
func (s *ShardedPassive) snapshotViews() ([]*shardView, uint64, time.Time) {
	s.dispatchMu.Lock()
	d0 := s.dispatched.Load()
	wm := s.watermark
	s.mu.RLock()
	if s.running && !s.closed {
		chans := make([]chan *shardView, len(s.shards))
		for i := range s.shards {
			ch := make(chan *shardView, 1)
			chans[i] = ch
			s.queues[i] <- shardMsg{snap: ch, wm: wm}
		}
		s.mu.RUnlock()
		s.dispatchMu.Unlock()
		views := make([]*shardView, len(chans))
		for i, ch := range chans {
			views[i] = <-ch
		}
		return views, d0, wm
	}
	s.mu.RUnlock()
	// Inline, or shut down. If workers ever ran, wait for their exit so
	// their final writes are visible here (Close already waits; this
	// covers snapshots racing Close).
	s.workers.Wait()
	views := make([]*shardView, len(s.shards))
	for i, sh := range s.shards {
		views[i] = sh.freeze(wm)
	}
	s.dispatchMu.Unlock()
	return views, d0, wm
}

// mergeViewsFull unions frozen shard views into one merged store plus the
// combined scanner list (shard detections are disjoint by source, so
// concatenation + sort reproduces the merged tracker's output) — the
// from-scratch merge path, built through persistent-map transients.
func (s *ShardedPassive) mergeViewsFull(views []*shardView) (*mergedStore, []ScannerInfo) {
	m := newMergedStore()
	sb := m.services.builder()
	tb := m.trails.builder()
	ob := m.tombs.builder()
	var scanners []ScannerInfo
	for _, v := range views {
		m.packets += v.disc.Packets
		for k, rec := range v.disc.services {
			sb.Set(k, rec)
		}
		for a, ts := range v.disc.addrTimes {
			tb.Set(a, ts)
		}
		for k, at := range v.disc.tombs {
			ob.Set(k, at)
		}
		scanners = append(scanners, v.scanners...)
	}
	m.services, m.trails, m.tombs = sb.freeze(), tb.freeze(), ob.freeze()
	sort.Slice(scanners, func(i, j int) bool { return scanners[i].Source < scanners[j].Source })
	return m, scanners
}

// mergeViewsDelta derives the merged store for views by patching the
// previous merged snapshot (prevInv, frozen at prevGens) with only the
// records, trails and tombstones the changed shards touched in between:
// persistent-map path copies for exactly the touched entries, zero
// full-map clones, no re-sort of untouched state. Each touched key is
// resolved against the shard's FINAL sealed state, so the patch is
// insensitive to the order (and interleaving) of the deltas within a span
// — a key that expired and was reborn lands on its final record, a key
// that expired for good is deleted with its tombstone. newKeys returns
// the services that appeared or were reborn since prev, updKeys those
// whose record was touched but persisted (re-observations — LastSeen,
// flows or client counts moved), and delKeys those that left (all three
// sorted, mutually disjoint). ok is false when the previous snapshot is
// not persistent-map backed or a shard's delta chain cannot be
// reconstructed; callers then fall back to mergeViewsFull.
func (s *ShardedPassive) mergeViewsDelta(views []*shardView, prevInv *Inventory, prevGens []uint64) (m *mergedStore, scanners []ScannerInfo, newKeys, updKeys, delKeys []ServiceKey, ok bool) {
	if prevInv == nil || len(prevGens) != len(views) {
		return nil, nil, nil, nil, nil, false
	}
	prev, isMerged := prevInv.d.(*mergedStore)
	if !isMerged {
		return nil, nil, nil, nil, nil, false
	}
	type span struct {
		shard  int
		deltas []sealDelta
	}
	var spans []span
	for i, v := range views {
		if v.gen == prevGens[i] {
			continue
		}
		ds, ok := s.shards[i].deltasBetween(prevGens[i], v.gen)
		if !ok {
			return nil, nil, nil, nil, nil, false
		}
		spans = append(spans, span{shard: i, deltas: ds})
	}

	m = &mergedStore{}
	sb := prev.services.builder()
	tb := prev.trails.builder()
	ob := prev.tombs.builder()
	for _, v := range views {
		m.packets += v.disc.Packets
		scanners = append(scanners, v.scanners...)
	}
	sort.Slice(scanners, func(i, j int) bool { return scanners[i].Source < scanners[j].Source })
	for _, sp := range spans {
		sealed := views[sp.shard].disc
		touched := make(map[ServiceKey]bool)
		reborn := make(map[ServiceKey]bool)
		addrs := make(map[netaddr.V4]bool)
		for _, d := range sp.deltas {
			for _, k := range d.keys {
				touched[k] = true
			}
			for _, k := range d.newKeys {
				touched[k] = true
				reborn[k] = true
			}
			for _, k := range d.delKeys {
				touched[k] = true
			}
			for _, a := range d.addrs {
				addrs[a] = true
			}
		}
		for k := range touched {
			_, was := prev.services.Get(k)
			if rec, live := sealed.services[k]; live {
				sb.Set(k, rec)
				if !was || reborn[k] {
					newKeys = append(newKeys, k)
				} else {
					updKeys = append(updKeys, k)
				}
			} else {
				sb.Delete(k)
				if was {
					delKeys = append(delKeys, k)
				}
			}
			if at, tombed := sealed.tombs[k]; tombed {
				ob.Set(k, at)
			}
		}
		for a := range addrs {
			tb.Set(a, sealed.addrTimes[a])
		}
	}
	m.services, m.trails, m.tombs = sb.freeze(), tb.freeze(), ob.freeze()
	sort.Slice(newKeys, func(i, j int) bool { return newKeys[i].Before(newKeys[j]) })
	sort.Slice(updKeys, func(i, j int) bool { return updKeys[i].Before(updKeys[j]) })
	sort.Slice(delKeys, func(i, j int) bool { return delKeys[i].Before(delKeys[j]) })
	return m, scanners, newKeys, updKeys, delKeys, true
}

// mergeSortedKeys unions a sorted key slice with sorted additions,
// deduplicating equal keys (a reborn service is "new" for provenance
// purposes but already listed). With no additions the original is
// returned as-is (it is immutable — shared between inventories).
func mergeSortedKeys(keys, add []ServiceKey) []ServiceKey {
	if len(add) == 0 {
		return keys
	}
	out := make([]ServiceKey, 0, len(keys)+len(add))
	i, j := 0, 0
	for i < len(keys) && j < len(add) {
		switch {
		case keys[i].Before(add[j]):
			out = append(out, keys[i])
			i++
		case add[j].Before(keys[i]):
			out = append(out, add[j])
			j++
		default:
			out = append(out, keys[i])
			i++
			j++
		}
	}
	out = append(out, keys[i:]...)
	out = append(out, add[j:]...)
	return out
}

// removeSortedKeys filters sorted deletions out of a sorted key slice.
// With no deletions the original is returned as-is.
func removeSortedKeys(keys, del []ServiceKey) []ServiceKey {
	if len(del) == 0 {
		return keys
	}
	out := make([]ServiceKey, 0, len(keys))
	j := 0
	for _, k := range keys {
		for j < len(del) && del[j].Before(k) {
			j++
		}
		if j < len(del) && del[j] == k {
			continue
		}
		out = append(out, k)
	}
	return out
}

// collectExpired drains the pending expiry notices off a view set. The
// views retain no reference afterwards, so a cached view reused by a later
// snapshot cannot re-emit them.
func collectExpired(views []*shardView) []expiredSvc {
	var out []expiredSvc
	for _, v := range views {
		if len(v.expired) > 0 {
			out = append(out, v.expired...)
			v.expired = nil
		}
	}
	return out
}

// viewGens extracts the generation vector of a view set.
func viewGens(views []*shardView) []uint64 {
	gens := make([]uint64, len(views))
	for i, v := range views {
		gens[i] = v.gen
	}
	return gens
}

// SnapshotDelta describes how one published snapshot differs from its
// predecessor — the O(churn) changed-key sets a snapshot observer needs
// to patch derived state (secondary indexes, caches) forward without
// rescanning the inventory. Added, Updated and Removed are sorted in
// canonical key order and mutually disjoint; a reborn service (expired
// and re-observed within one span) is Added, an expired key that
// survives on active evidence is Updated (its provenance downgraded).
// Full set means no delta could be derived (first snapshot, cache
// lineage break, or an active-side change that reclassifies everything)
// — consumers must rebuild from the new inventory.
type SnapshotDelta struct {
	Added   []ServiceKey
	Updated []ServiceKey
	Removed []ServiceKey
	Full    bool
}

// OnSnapshot registers fn to observe every newly built snapshot: it runs
// under the snapshot lock, after the new inventory is cached, with the
// previous inventory (nil on the first), the new one, and the delta
// between them. Cache hits (snapshots of an unchanged engine) do not
// invoke it. Because fn blocks the snapshot path, it must be fast —
// O(delta) work, no waiting on queries. At most one observer; nil clears.
func (s *ShardedPassive) OnSnapshot(fn func(prev, inv *Inventory, delta SnapshotDelta)) {
	s.snapMu.Lock()
	s.onSnap = fn
	s.snapMu.Unlock()
}

// Snapshot freezes a consistent point-in-time Inventory. It is
// non-terminal and cheap to repeat: with nothing dispatched since the
// previous snapshot the cached Inventory is returned outright (no shard
// traffic, no allocation); otherwise unchanged shards reuse their
// previously frozen views, changed shards seal only the records touched
// since their last freeze, and the merged inventory is patched forward
// from the previous snapshot rather than rebuilt. On a running engine the
// snapshot point is a batch boundary of the producer's stream (everything
// dispatched before the call is included), and the result is
// byte-identical to pausing the producer, flushing, and snapshotting at
// that point. Safe to call from any goroutine at any lifecycle stage.
func (s *ShardedPassive) Snapshot() *Inventory {
	if inv := s.snap.fast(s.dispatched.Load(), 0); inv != nil {
		return inv
	}
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	var t0 time.Time
	if s.met != nil {
		t0 = time.Now()
	}
	views, d0, _ := s.snapshotViews()
	if exp := collectExpired(views); len(exp) > 0 {
		sortExpired(exp)
		for _, e := range exp {
			s.events.serviceExpired(e.key, e.at, e.prov, e.clear)
		}
		if m := s.met; m != nil {
			m.Flight.Record(obs.TraceExpirySweep, "", int64(len(exp)), 0)
		}
	}
	gens := viewGens(views)
	if inv := s.snap.get(gens); inv != nil {
		return inv
	}
	prevGens, prevInv := s.snap.peek()
	var inv *Inventory
	delta := SnapshotDelta{Full: true}
	if prevInv != nil {
		if m, scanners, newKeys, updKeys, delKeys, ok := s.mergeViewsDelta(views, prevInv, prevGens); ok {
			inv = &Inventory{d: m, keys: removeSortedKeys(mergeSortedKeys(prevInv.keys, newKeys), delKeys), scanners: scanners}
			delta = SnapshotDelta{Added: newKeys, Updated: updKeys, Removed: delKeys}
		}
	}
	if inv == nil {
		merged, scanners := s.mergeViewsFull(views)
		inv = newFrozenInventory(merged, scanners)
	}
	s.snap.put(gens, inv, d0, 0)
	if s.onSnap != nil {
		s.onSnap(prevInv, inv, delta)
	}
	if m := s.met; m != nil {
		el := time.Since(t0)
		m.Snapshot.Observe(el)
		m.Flight.Record(obs.TraceSnapshotSealed, "", int64(inv.Len()), el.Microseconds())
	}
	return inv
}

var (
	_ pipeline.BatchSink = (*ShardedPassive)(nil)
)
