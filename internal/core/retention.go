package core

// Retention: TTL-based expiry of service records, the "forgetting" half of
// a deployable inventory (DHCP churn, transient services).
//
// All deadlines run on the OBSERVATION clock — packet timestamps — never
// wall time, so replays and live runs expire identically. A passive record
// expires when the engine's watermark (the maximum packet timestamp ever
// dispatched) passes LastSeen+TTL; an active record when the watermark
// passes its last successful probe answer plus the active TTL.
//
// Expiry is decided at two points, chosen so the outcome is independent of
// snapshot cadence for monotone observation clocks:
//
//   - observe-side: when new evidence for a key arrives at or after the old
//     record's deadline, the old incarnation is retired on the spot and a
//     fresh record (new FirstSeen, reset weights) is created — regardless
//     of whether any snapshot happened to run in between;
//   - snapshot-side: a per-shard deadline min-heap is drained against the
//     watermark at every freeze, removing records whose deadline passed
//     with no further evidence.
//
// Both append to a pending list that the next Snapshot drains, sorts by
// (deadline, key) and publishes as EventServiceExpired — exactly once per
// expiry, deterministically ordered across shard counts. Every expiry also
// leaves a tombstone (key → deadline) that sealed views, merged snapshots,
// checkpoints and federation snapshot frames carry, so late or restarted
// consumers can withdraw state they learned before the expiry.

import (
	"sort"
	"time"
)

// RetentionPolicy configures TTL expiry. Zero durations disable the
// corresponding mechanism; the zero policy disables retention entirely.
type RetentionPolicy struct {
	// PassiveTTL expires a passively-discovered record once no positive
	// evidence has arrived for this long (observation clock).
	PassiveTTL time.Duration
	// ActiveTTL expires a probe-discovered record once it has not answered
	// a probe for this long (measured against the passive watermark).
	ActiveTTL time.Duration
	// SweepEvery, when set, makes the facade pipeline take a background
	// snapshot at this wall-clock period so expiries surface (and publish
	// their events) even when nobody is reading. Purely a trigger cadence:
	// expiry *decisions* stay on the observation clock.
	SweepEvery time.Duration
}

// Enabled reports whether any expiry mechanism is on.
func (p RetentionPolicy) Enabled() bool { return p.PassiveTTL > 0 || p.ActiveTTL > 0 }

// expEntry is one deadline-heap entry. Entries are lazy: a refreshed record
// keeps its stale entries, which re-push with the true deadline when popped.
type expEntry struct {
	at  time.Time
	key ServiceKey
}

// expiredSvc is one pending expiry awaiting publication at the next
// snapshot. clear marks snapshot-side expiries, whose emission must also
// clear the event stream's seen table so a later rediscovery re-announces;
// observe-side retirements already cleared it synchronously (the new
// incarnation's discovery event depends on it) and must not clear the new
// incarnation's entry.
type expiredSvc struct {
	key   ServiceKey
	at    time.Time
	prov  Provenance
	clear bool
}

// sortExpired orders pending expiries canonically: by deadline, then key,
// then provenance — the published EventServiceExpired order, identical at
// any shard count.
func sortExpired(exp []expiredSvc) {
	sort.Slice(exp, func(i, j int) bool {
		a, b := exp[i], exp[j]
		if !a.at.Equal(b.at) {
			return a.at.Before(b.at)
		}
		if a.key != b.key {
			return a.key.Before(b.key)
		}
		return a.prov < b.prov
	})
}

// expPush adds a deadline entry (sift-up on a binary min-heap by at).
func (d *PassiveDiscoverer) expPush(at time.Time, key ServiceKey) {
	d.expq = append(d.expq, expEntry{at: at, key: key})
	i := len(d.expq) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !d.expq[i].at.Before(d.expq[p].at) {
			break
		}
		d.expq[i], d.expq[p] = d.expq[p], d.expq[i]
		i = p
	}
}

// expPop removes and returns the earliest-deadline entry.
func (d *PassiveDiscoverer) expPop() expEntry {
	top := d.expq[0]
	last := len(d.expq) - 1
	d.expq[0] = d.expq[last]
	d.expq = d.expq[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(d.expq) && d.expq[l].at.Before(d.expq[min].at) {
			min = l
		}
		if r < len(d.expq) && d.expq[r].at.Before(d.expq[min].at) {
			min = r
		}
		if min == i {
			return top
		}
		d.expq[i], d.expq[min] = d.expq[min], d.expq[i]
		i = min
	}
}

// setRetention switches passive TTL expiry on (or off) and seeds the
// deadline heap from whatever the discoverer already holds, so retention
// configured after a checkpoint restore still covers restored records.
// Call only from the shard's owner (pre-Run, or under the dispatch lock).
func (d *PassiveDiscoverer) setRetention(ttl time.Duration) {
	d.ttl = ttl
	d.expq = d.expq[:0]
	if ttl <= 0 {
		return
	}
	for k, rec := range d.services {
		d.expPush(rec.LastSeen.Add(ttl), k)
	}
}

// retire removes the record's live state and leaves a tombstone at the
// given deadline: the shared half of observe-side and snapshot-side expiry.
func (d *PassiveDiscoverer) retire(key ServiceKey, deadline time.Time) {
	delete(d.services, key)
	delete(d.peers, key)
	d.tombs[key] = deadline
	d.tombDirty = append(d.tombDirty, key)
	if d.ckDirty != nil {
		delete(d.ckDirty, key)
		d.ckTombs[key] = deadline
	}
}

// expireDue drains every deadline at or before the watermark, expiring
// records whose evidence really has gone stale and lazily re-pushing
// entries whose record was refreshed since the entry was pushed. Returns
// whether anything expired (the caller bumps the shard generation so the
// change propagates through the snapshot machinery). Runs on the shard's
// owner goroutine at freeze time.
func (d *PassiveDiscoverer) expireDue(wm time.Time) bool {
	if d.ttl <= 0 || wm.IsZero() {
		return false
	}
	any := false
	for len(d.expq) > 0 && !d.expq[0].at.After(wm) {
		e := d.expPop()
		rec, live := d.services[e.key]
		if !live {
			continue // already expired or retired under an earlier entry
		}
		deadline := rec.LastSeen.Add(d.ttl)
		if deadline.After(wm) {
			d.expPush(deadline, e.key) // refreshed since the stale entry
			continue
		}
		d.retire(e.key, deadline)
		if d.sealed != nil {
			delete(d.dirty, e.key)
			d.deadKeys = append(d.deadKeys, e.key)
		}
		d.pendingExpired = append(d.pendingExpired, expiredSvc{
			key: e.key, at: deadline, prov: PassiveOnly, clear: true,
		})
		any = true
	}
	return any
}

// takePendingExpired hands the accumulated pending expiries to the freeze
// that will publish them, clearing the accumulator.
func (d *PassiveDiscoverer) takePendingExpired() []expiredSvc {
	p := d.pendingExpired
	d.pendingExpired = nil
	return p
}
