package core

import (
	"sort"
	"time"

	"servdisc/internal/netaddr"
)

// Scan-detection thresholds, straight from Section 4.3: "we eliminate any
// host which attempts to open TCP connections to 100 or more unique IP
// addresses on our network within 12 hours and receives TCP RST responses
// from at least 100 of these contacted hosts."
const (
	ScanDetectWindow  = 12 * time.Hour
	ScanDetectMinDsts = 100
	ScanDetectMinRsts = 100
)

// ScannerInfo describes one detected external scanner. The JSON tags
// define the serialized form of the event feeds and the federation wire.
type ScannerInfo struct {
	// Source is the scanning address.
	Source netaddr.V4 `json:"source"`
	// Window is the start of the 12-hour bucket in which the thresholds
	// were first crossed.
	Window time.Time `json:"window"`
	// UniqueDsts and RstDsts are the peak per-window tallies.
	UniqueDsts int `json:"unique_dsts"`
	RstDsts    int `json:"rst_dsts"`
}

// scanTracker accumulates per-external-source contact statistics in
// tumbling 12-hour windows. Tumbling (rather than sliding) windows match
// the offline bucketing an operator would run over a trace; a scan split
// across a boundary at worst doubles its detection latency, never escapes.
type scanTracker struct {
	sources map[netaddr.V4]*scanSource
	origin  time.Time
	started bool

	// onDetect, when set, fires the first time a source crosses both
	// thresholds, with the tallies at the moment of crossing and the
	// timestamp of the packet that tipped it. flagged remembers which
	// sources already fired so detection is online and once-per-source
	// (detect() below stays the peak-window view).
	onDetect func(info ScannerInfo, at time.Time)
	flagged  map[netaddr.V4]bool

	// best is the peak qualifying window per source, maintained online as
	// packets arrive so detect() never rescans every source's every
	// window — the property that makes high-frequency snapshot freezes
	// cheap. A window beats the incumbent on greater unique destinations,
	// then greater RST destinations, then the earlier window (the same
	// rule detect() applied offline; counts within one window only grow,
	// so online and offline evaluation agree). detGen bumps on every
	// change and cache holds the last sorted rendering.
	best     map[netaddr.V4]ScannerInfo
	detGen   uint64
	cache    []ScannerInfo
	cacheGen uint64

	// ckDirty names the sources touched since the last checkpoint export
	// (see export.go). Off (nil, zero cost) until the first full export.
	ckDirty map[netaddr.V4]struct{}
}

type scanSource struct {
	windows map[int64]*scanWindow
}

type scanWindow struct {
	dsts    map[netaddr.V4]struct{}
	rstDsts map[netaddr.V4]struct{}
}

func newScanTracker() *scanTracker {
	return &scanTracker{
		sources:  make(map[netaddr.V4]*scanSource),
		best:     make(map[netaddr.V4]ScannerInfo),
		cacheGen: ^uint64(0),
	}
}

// seed pins the window origin if the tracker has not started yet. Sharded
// ingestion seeds every shard's tracker with the timestamp of the first
// scan-relevant packet in the stream, exactly the origin a single tracker
// would have picked lazily.
func (t *scanTracker) seed(at time.Time) {
	if !t.started {
		t.origin = at
		t.started = true
	}
}

func (t *scanTracker) windowIndex(at time.Time) int64 {
	if !t.started {
		t.origin = at
		t.started = true
	}
	return int64(at.Sub(t.origin) / ScanDetectWindow)
}

func (t *scanTracker) window(src netaddr.V4, at time.Time) (*scanWindow, int64) {
	s := t.sources[src]
	if s == nil {
		s = &scanSource{windows: make(map[int64]*scanWindow)}
		t.sources[src] = s
	}
	idx := t.windowIndex(at)
	w := s.windows[idx]
	if w == nil {
		w = &scanWindow{
			dsts:    make(map[netaddr.V4]struct{}),
			rstDsts: make(map[netaddr.V4]struct{}),
		}
		s.windows[idx] = w
	}
	return w, idx
}

// recordSyn notes an inbound connection attempt src → dst.
func (t *scanTracker) recordSyn(at time.Time, src, dst netaddr.V4) {
	w, idx := t.window(src, at)
	w.dsts[dst] = struct{}{}
	if t.ckDirty != nil {
		t.ckDirty[src] = struct{}{}
	}
	t.maybeFlag(src, w, idx, at)
	t.updateBest(src, w, idx)
}

// recordRst notes a campus RST returned to the external peer.
func (t *scanTracker) recordRst(at time.Time, peer, from netaddr.V4) {
	w, idx := t.window(peer, at)
	w.rstDsts[from] = struct{}{}
	if t.ckDirty != nil {
		t.ckDirty[peer] = struct{}{}
	}
	t.maybeFlag(peer, w, idx, at)
	t.updateBest(peer, w, idx)
}

// updateBest folds the just-touched window into the per-source peak. Runs
// on every tracker-relevant packet, so the comparison is a handful of
// integer checks; it only allocates when a source first qualifies.
func (t *scanTracker) updateBest(src netaddr.V4, w *scanWindow, idx int64) {
	if len(w.dsts) < ScanDetectMinDsts || len(w.rstDsts) < ScanDetectMinRsts {
		return
	}
	start := t.origin.Add(time.Duration(idx) * ScanDetectWindow)
	cur, ok := t.best[src]
	if ok && !cur.Window.Equal(start) {
		// A different window holds the peak: replace only on strictly
		// better tallies (earlier window wins full ties).
		if len(w.dsts) < cur.UniqueDsts ||
			(len(w.dsts) == cur.UniqueDsts && len(w.rstDsts) <= cur.RstDsts) {
			return
		}
	} else if ok && len(w.dsts) == cur.UniqueDsts && len(w.rstDsts) == cur.RstDsts {
		return // same window, nothing grew on the tallied axis
	}
	t.best[src] = ScannerInfo{
		Source:     src,
		Window:     start,
		UniqueDsts: len(w.dsts),
		RstDsts:    len(w.rstDsts),
	}
	t.detGen++
}

// maybeFlag fires onDetect the first time src's current window satisfies
// both thresholds.
func (t *scanTracker) maybeFlag(src netaddr.V4, w *scanWindow, idx int64, at time.Time) {
	if t.onDetect == nil || t.flagged[src] {
		return
	}
	if len(w.dsts) < ScanDetectMinDsts || len(w.rstDsts) < ScanDetectMinRsts {
		return
	}
	if t.flagged == nil {
		t.flagged = make(map[netaddr.V4]bool)
	}
	t.flagged[src] = true
	t.onDetect(ScannerInfo{
		Source:     src,
		Window:     t.origin.Add(time.Duration(idx) * ScanDetectWindow),
		UniqueDsts: len(w.dsts),
		RstDsts:    len(w.rstDsts),
	}, at)
}

// detect returns the detected scanners sorted by source — the peak
// qualifying window per source, read straight from the online best map.
// The sorted slice is cached until the next change and must be treated as
// read-only by callers (frozen shard views alias it).
func (t *scanTracker) detect() []ScannerInfo {
	if t.cacheGen == t.detGen {
		return t.cache
	}
	out := make([]ScannerInfo, 0, len(t.best))
	for _, info := range t.best {
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Source < out[j].Source })
	t.cache, t.cacheGen = out, t.detGen
	return out
}

// mergeFrom unions another tracker's state into t. Correct only when the
// two trackers saw disjoint source sets (the owner-sharding invariant);
// ShardedPassive.Merge relies on it.
func (t *scanTracker) mergeFrom(o *scanTracker) {
	if o.started && !t.started {
		t.seed(o.origin)
	}
	for src, s := range o.sources {
		t.sources[src] = s
	}
	for src, info := range o.best {
		t.best[src] = info
	}
	for src := range o.flagged {
		if t.flagged == nil {
			t.flagged = make(map[netaddr.V4]bool)
		}
		t.flagged[src] = true
	}
	t.detGen++
}
