package core

import (
	"maps"
	"sort"
	"time"

	"servdisc/internal/netaddr"
	"servdisc/internal/packet"
	"servdisc/internal/probe"
)

// ScanMeta summarizes one completed sweep. The JSON tags define the
// serialized form of the event feeds and the federation wire.
type ScanMeta struct {
	ID       int       `json:"id"`
	Started  time.Time `json:"started"`
	Finished time.Time `json:"finished"`
}

// AddrScanOutcome is one address's aggregate result in one sweep. The
// JSON tags define the checkpoint wire form (see export.go).
type AddrScanOutcome struct {
	ScanID int       `json:"scan_id"`
	Time   time.Time `json:"time"`
	// Open lists ports that answered SYN-ACK in this sweep.
	Open []uint16 `json:"open,omitempty"`
	// Closed and Filtered count RST and silent ports.
	Closed   int `json:"closed,omitempty"`
	Filtered int `json:"filtered,omitempty"`
}

// ActiveDiscoverer accumulates probe sweep reports into an inventory plus
// a per-address outcome history used by the firewall heuristics and the
// probe-subset analyses (Figure 7).
//
// Ingestion is order-independent: feeding the same set of reports in any
// order yields identical state (first-open times keep the earliest
// observation, sweep metadata and outcome histories are kept sorted).
// That property is what lets Hybrid reconcile concurrently-arriving scan
// reports deterministically. AddReport itself is single-writer; wrap with
// Hybrid (or external locking) for concurrent producers.
type ActiveDiscoverer struct {
	ports []uint16

	firstOpen map[ServiceKey]time.Time
	// lastOpen is each service's most recent probe answer — the timestamp
	// active retention deadlines are computed from (lastOpen + ActiveTTL).
	lastOpen map[ServiceKey]time.Time
	// tombs records expired services: key → the deadline that retired it.
	// Evidence at or after the deadline re-creates the service.
	tombs   map[ServiceKey]time.Time
	scans   []ScanMeta
	perAddr map[netaddr.V4][]AddrScanOutcome

	// respondedEver tracks addresses that ever answered anything (RST or
	// SYN-ACK) — the live-host estimate of Section 3.3.
	respondedEver *netaddr.Set

	// udp keeps the generic-UDP sweep outcomes per address and port.
	udp map[netaddr.V4]map[uint16]probe.UDPState

	// onDiscovered, when set, fires the first time a service answers a
	// probe, from the goroutine applying the report. onOpenEarlier fires
	// when an out-of-order report moves a known service's first-open time
	// earlier. Hybrid wires both into the engine's event stream.
	onDiscovered  func(key ServiceKey, t time.Time)
	onOpenEarlier func(key ServiceKey, t time.Time)

	// sealed marks a frozen view produced by clone: immutable, so the
	// accessors skip their defensive copies. AddReport must never run on
	// a sealed view.
	sealed bool
	// cow flips on the live discoverer once a clone shares its outcome
	// histories and UDP maps; ownedAddr/ownedUDP list the entries already
	// copied back since, so each is copied at most once per clone.
	cow       bool
	ownedAddr map[netaddr.V4]bool
	ownedUDP  map[netaddr.V4]bool
}

// NewActiveDiscoverer builds a discoverer. ports documents the sweep's TCP
// port set (informational; reports carry their own ports).
func NewActiveDiscoverer(ports []uint16) *ActiveDiscoverer {
	return &ActiveDiscoverer{
		ports:         append([]uint16(nil), ports...),
		firstOpen:     make(map[ServiceKey]time.Time),
		lastOpen:      make(map[ServiceKey]time.Time),
		tombs:         make(map[ServiceKey]time.Time),
		perAddr:       make(map[netaddr.V4][]AddrScanOutcome),
		respondedEver: netaddr.NewSet(),
		udp:           make(map[netaddr.V4]map[uint16]probe.UDPState),
	}
}

// Ports returns the configured TCP port list.
func (d *ActiveDiscoverer) Ports() []uint16 { return d.ports }

// AddReport ingests one sweep, in either full or compact form.
func (d *ActiveDiscoverer) AddReport(rep *probe.ScanReport) {
	// Keep sweep metadata sorted by (Started, ID); as in insertOutcome,
	// reports normally arrive in order, so this is an O(1) tail append.
	d.scans = append(d.scans, ScanMeta{ID: rep.ID, Started: rep.Started, Finished: rep.Finished})
	for i := len(d.scans) - 1; i > 0 && scanBefore(d.scans[i], d.scans[i-1]); i-- {
		d.scans[i], d.scans[i-1] = d.scans[i-1], d.scans[i]
	}

	cur := make(map[netaddr.V4]*AddrScanOutcome)
	for _, res := range rep.TCP {
		out := cur[res.Addr]
		if out == nil {
			out = &AddrScanOutcome{ScanID: rep.ID, Time: res.Time}
			cur[res.Addr] = out
		}
		switch res.State {
		case probe.StateOpen:
			out.Open = append(out.Open, res.Port)
			d.recordOpen(res.Addr, res.Port, res.Time)
		case probe.StateClosed:
			out.Closed++
			d.respondedEver.Add(res.Addr)
		default:
			out.Filtered++
		}
	}
	for a, out := range cur {
		d.insertOutcome(a, *out)
	}

	for _, sum := range rep.Summaries {
		out := AddrScanOutcome{
			ScanID: rep.ID, Time: sum.Time,
			Open:   append([]uint16(nil), sum.Open...),
			Closed: sum.Closed, Filtered: sum.Filtered,
		}
		d.insertOutcome(sum.Addr, out)
		if sum.Closed > 0 {
			d.respondedEver.Add(sum.Addr)
		}
		for _, port := range sum.Open {
			d.recordOpen(sum.Addr, port, sum.Time)
		}
	}

	for _, res := range rep.UDP {
		m := d.udp[res.Addr]
		switch {
		case m == nil:
			m = make(map[uint16]probe.UDPState)
			d.udp[res.Addr] = m
		case d.cow && !d.ownedUDP[res.Addr]:
			// The per-address outcome map is shared with a frozen view:
			// copy before the first post-clone write.
			m = maps.Clone(m)
			d.udp[res.Addr] = m
			if d.ownedUDP == nil {
				d.ownedUDP = make(map[netaddr.V4]bool)
			}
			d.ownedUDP[res.Addr] = true
		}
		// Keep the most definitive outcome across retries: open beats
		// closed beats silence.
		prev, seen := m[res.Port]
		if !seen || betterUDP(res.State, prev) {
			m[res.Port] = res.State
		}
		if res.State != probe.UDPNoResponse {
			d.respondedEver.Add(res.Addr)
		}
	}
}

func (d *ActiveDiscoverer) recordOpen(addr netaddr.V4, port uint16, t time.Time) {
	d.respondedEver.Add(addr)
	key := ServiceKey{Addr: addr, Proto: packet.ProtoTCP, Port: port}
	// Keep the earliest observation, not the first-ingested one, so that
	// reports arriving out of sweep order converge on the same state.
	cur, seen := d.firstOpen[key]
	if !seen || t.Before(cur) {
		d.firstOpen[key] = t
	}
	if last, ok := d.lastOpen[key]; !ok || t.After(last) {
		d.lastOpen[key] = t
	}
	switch {
	case !seen && d.onDiscovered != nil:
		d.onDiscovered(key, t)
	case seen && t.Before(cur) && d.onOpenEarlier != nil:
		d.onOpenEarlier(key, t)
	}
}

// insertOutcome appends an outcome to the address's history, keeping it
// sorted by (Time, ScanID). Reports normally arrive in sweep order, so the
// insertion point is almost always the end. A history shared with a frozen
// view is copied before the first post-clone insert (the in-place
// insertion sort would otherwise disturb the view's aliased array).
func (d *ActiveDiscoverer) insertOutcome(addr netaddr.V4, out AddrScanOutcome) {
	outs := d.perAddr[addr]
	if d.cow && !d.ownedAddr[addr] {
		outs = append(make([]AddrScanOutcome, 0, len(outs)+1), outs...)
		if d.ownedAddr == nil {
			d.ownedAddr = make(map[netaddr.V4]bool)
		}
		d.ownedAddr[addr] = true
	}
	outs = append(outs, out)
	for i := len(outs) - 1; i > 0 && outcomeBefore(outs[i], outs[i-1]); i-- {
		outs[i], outs[i-1] = outs[i-1], outs[i]
	}
	d.perAddr[addr] = outs
}

// outcomeBefore orders outcomes by time, then scan ID.
func outcomeBefore(a, b AddrScanOutcome) bool {
	if !a.Time.Equal(b.Time) {
		return a.Time.Before(b.Time)
	}
	return a.ScanID < b.ScanID
}

// scanBefore orders sweep metadata by start time, then ID.
func scanBefore(a, b ScanMeta) bool {
	if !a.Started.Equal(b.Started) {
		return a.Started.Before(b.Started)
	}
	return a.ID < b.ID
}

func betterUDP(a, b probe.UDPState) bool {
	rank := func(s probe.UDPState) int {
		switch s {
		case probe.UDPOpen:
			return 2
		case probe.UDPClosed:
			return 1
		default:
			return 0
		}
	}
	return rank(a) > rank(b)
}

// Scans returns sweep metadata in start order.
func (d *ActiveDiscoverer) Scans() []ScanMeta { return d.scans }

// FirstOpen returns when a service first answered a probe.
func (d *ActiveDiscoverer) FirstOpen(key ServiceKey) (time.Time, bool) {
	t, ok := d.firstOpen[key]
	return t, ok
}

// Services returns the first-open inventory. On a live discoverer it is a
// fresh map the caller may keep and modify freely; a frozen view returned
// by Hybrid's snapshot machinery hands out its own immutable map instead
// of copying — treat that one as read-only.
func (d *ActiveDiscoverer) Services() map[ServiceKey]time.Time {
	if d.sealed {
		return d.firstOpen
	}
	return maps.Clone(d.firstOpen)
}

// RespondedEver returns the set of addresses that ever answered probes at
// all; mutating it does not affect the discoverer. On a frozen view the
// returned set shares storage copy-on-write instead of being copied — a
// caller's first mutation pays the copy, a read-only caller pays nothing.
func (d *ActiveDiscoverer) RespondedEver() *netaddr.Set {
	if d.sealed {
		return d.respondedEver.CloneShared()
	}
	return d.respondedEver.Clone()
}

// clone freezes the discoverer into a sealed view that later reports into
// the original cannot disturb — the active side of Hybrid's live
// snapshots. Instead of deep-copying, the view shares the per-address
// outcome histories, the UDP outcome maps and the responded set with the
// live discoverer, which marks them copy-on-write: AddReport copies an
// entry back the first time it touches it after the clone. Only the
// (small) top-level tables are copied eagerly. Emission hooks are not
// carried over.
func (d *ActiveDiscoverer) clone() *ActiveDiscoverer {
	c := &ActiveDiscoverer{
		ports:         d.ports,
		firstOpen:     maps.Clone(d.firstOpen),
		lastOpen:      maps.Clone(d.lastOpen),
		tombs:         maps.Clone(d.tombs),
		scans:         append([]ScanMeta(nil), d.scans...),
		perAddr:       maps.Clone(d.perAddr),
		respondedEver: d.respondedEver.CloneShared(),
		udp:           maps.Clone(d.udp),
		sealed:        true,
	}
	d.cow = true
	d.ownedAddr = nil
	d.ownedUDP = nil
	return c
}

// AddrFirstOpen rolls the inventory up to addresses, optionally restricted
// to services passing keep.
func (d *ActiveDiscoverer) AddrFirstOpen(keep func(ServiceKey) bool) map[netaddr.V4]time.Time {
	out := make(map[netaddr.V4]time.Time)
	for k, t := range d.firstOpen {
		if keep != nil && !keep(k) {
			continue
		}
		if cur, ok := out[k.Addr]; !ok || t.Before(cur) {
			out[k.Addr] = t
		}
	}
	return out
}

// AddrFirstOpenForScans rolls up first-open times considering only the
// given sweeps — the probe-subset machinery behind the time-of-day study
// (Section 5.1). keep filters services as elsewhere.
func (d *ActiveDiscoverer) AddrFirstOpenForScans(scanIDs map[int]bool, keep func(ServiceKey) bool) map[netaddr.V4]time.Time {
	out := make(map[netaddr.V4]time.Time)
	for addr, outs := range d.perAddr {
		for _, o := range outs {
			if !scanIDs[o.ScanID] || len(o.Open) == 0 {
				continue
			}
			match := keep == nil
			if !match {
				for _, port := range o.Open {
					if keep(ServiceKey{Addr: addr, Proto: packet.ProtoTCP, Port: port}) {
						match = true
						break
					}
				}
			}
			if !match {
				continue
			}
			if cur, ok := out[addr]; !ok || o.Time.Before(cur) {
				out[addr] = o.Time
			}
		}
	}
	return out
}

// Outcomes returns the per-scan outcome history of an address.
func (d *ActiveDiscoverer) Outcomes(addr netaddr.V4) []AddrScanOutcome {
	return d.perAddr[addr]
}

// UDPOutcome returns the recorded generic-UDP sweep state for (addr, port).
func (d *ActiveDiscoverer) UDPOutcome(addr netaddr.V4, port uint16) (probe.UDPState, bool) {
	m, ok := d.udp[addr]
	if !ok {
		return 0, false
	}
	s, ok := m[port]
	return s, ok
}

// UDPAddrs returns every address probed over UDP with at least one recorded
// outcome, sorted.
func (d *ActiveDiscoverer) UDPAddrs() []netaddr.V4 {
	out := make([]netaddr.V4, 0, len(d.udp))
	for a := range d.udp {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// MixedResponse reports whether the address, in a single sweep, returned
// RST on at least one port while staying silent on another — the paper's
// first firewall confirmation signal (Section 4.2.4).
func (d *ActiveDiscoverer) MixedResponse(addr netaddr.V4) bool {
	for _, out := range d.perAddr[addr] {
		if out.Closed > 0 && out.Filtered > 0 {
			return true
		}
	}
	return false
}
