package core

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"time"

	"servdisc/internal/netaddr"
	"servdisc/internal/packet"
	"servdisc/internal/probe"
	"servdisc/internal/stats"
)

// genReports synthesizes a deterministic sequence of sweep reports over
// the same campus space genTrace populates: some services overlap the
// passive trace (provenance races), some are probe-only, plus UDP
// outcomes and compact summaries.
func genReports(n int) []*probe.ScanReport {
	campusPfx := netaddr.MustParsePrefix("128.125.0.0/16")
	base := time.Date(2006, 9, 19, 11, 0, 0, 0, time.UTC)
	ports := []uint16{21, 22, 80, 443, 3306}
	var out []*probe.ScanReport
	for i := 0; i < n; i++ {
		start := base.Add(time.Duration(i) * 12 * time.Hour)
		rep := &probe.ScanReport{ID: i, Started: start, Finished: start.Add(90 * time.Minute)}
		for t := 0; t < 80; t++ {
			addr := campusPfx.Base() + netaddr.V4(256+t) // overlaps genTrace servers
			ts := start.Add(time.Duration(t) * time.Second)
			for pi, port := range ports {
				state := probe.StateFiltered
				switch (t + pi + i) % 3 {
				case 0:
					state = probe.StateOpen
				case 1:
					state = probe.StateClosed
				}
				rep.TCP = append(rep.TCP, probe.TCPResult{Time: ts, Addr: addr, Port: port, State: state})
			}
		}
		// Probe-only space the passive trace never sees.
		for t := 0; t < 20; t++ {
			addr := campusPfx.Base() + netaddr.V4(5000+t)
			sum := probe.AddrSummary{Addr: addr, Time: start.Add(time.Duration(200+t) * time.Second)}
			if t%2 == 0 {
				sum.Open = []uint16{22, 80}
			} else {
				sum.Closed = 3
				sum.Filtered = 2
			}
			rep.Summaries = append(rep.Summaries, sum)
		}
		for t := 0; t < 30; t++ {
			addr := campusPfx.Base() + netaddr.V4(256+t)
			state := probe.UDPNoResponse
			switch (t + i) % 3 {
			case 0:
				state = probe.UDPOpen
			case 1:
				state = probe.UDPClosed
			}
			rep.UDP = append(rep.UDP, probe.UDPResult{
				Time: start.Add(time.Duration(400+t) * time.Second),
				Addr: addr, Port: 53, State: state,
			})
		}
		out = append(out, rep)
	}
	return out
}

// feedHybrid drives a hybrid engine with one specific interleaving of
// passive batches and scan reports. order[i] < 0 means "deliver the next
// report"; otherwise deliver the next batch.
func feedHybrid(h *Hybrid, pkts []packet.Packet, reps []*probe.ScanReport, rng *stats.RNG) {
	ri := 0
	for off := 0; off < len(pkts); {
		if ri < len(reps) && rng.Intn(4) == 0 {
			h.AddReport(reps[ri])
			ri++
			continue
		}
		sz := 1 + rng.Intn(400)
		if off+sz > len(pkts) {
			sz = len(pkts) - off
		}
		h.HandleBatch(pkts[off : off+sz])
		off += sz
	}
	for ; ri < len(reps); ri++ {
		h.AddReport(reps[ri])
	}
}

// TestHybridDeterministicInterleaving is the acceptance property: the
// hybrid snapshot must be byte-identical for ANY interleaving of passive
// batches and scan reports, at shard counts 1, 2 and 8, in both inline and
// concurrent modes — including reports delivered in reverse sweep order.
func TestHybridDeterministicInterleaving(t *testing.T) {
	campusPfx := netaddr.MustParsePrefix("128.125.0.0/16")
	udpPorts := []uint16{53, 123, 137}
	tcpPorts := []uint16{21, 22, 80, 443, 3306}
	pkts := genTrace(3, 20000)
	reps := genReports(6)

	// Reference: passive first in one batch, then reports in sweep order.
	ref := NewHybrid(campusPfx, udpPorts, 1, tcpPorts)
	ref.HandleBatch(pkts)
	for _, rep := range reps {
		ref.AddReport(rep)
	}
	want := ref.Snapshot().Dump()
	if len(want) == 0 || !bytes.Contains(want, []byte("active-first")) ||
		!bytes.Contains(want, []byte("passive-first")) ||
		!bytes.Contains(want, []byte("active-only")) ||
		!bytes.Contains(want, []byte("passive-only")) {
		t.Fatalf("degenerate reference: not all provenance classes present:\n%.400s", want)
	}

	for _, shards := range []int{1, 2, 8} {
		// Reports before any traffic, in reverse sweep order.
		t.Run(fmt.Sprintf("shards=%d/reports-first-reversed", shards), func(t *testing.T) {
			h := NewHybrid(campusPfx, udpPorts, shards, tcpPorts)
			for i := len(reps) - 1; i >= 0; i-- {
				h.AddReport(reps[i])
			}
			h.HandleBatch(pkts)
			if got := h.Snapshot().Dump(); !bytes.Equal(want, got) {
				t.Fatal("snapshot differs from reference")
			}
		})
		// Random interleavings, inline mode.
		t.Run(fmt.Sprintf("shards=%d/interleaved-sync", shards), func(t *testing.T) {
			for seed := uint64(0); seed < 3; seed++ {
				h := NewHybrid(campusPfx, udpPorts, shards, tcpPorts)
				feedHybrid(h, pkts, reps, stats.NewRNG(seed).Derive("hybrid"))
				if got := h.Snapshot().Dump(); !bytes.Equal(want, got) {
					t.Fatalf("seed %d: snapshot differs from reference", seed)
				}
			}
		})
		// Random interleavings, concurrent workers.
		t.Run(fmt.Sprintf("shards=%d/interleaved-async", shards), func(t *testing.T) {
			for seed := uint64(10); seed < 13; seed++ {
				h := NewHybrid(campusPfx, udpPorts, shards, tcpPorts)
				h.Run(context.Background())
				feedHybrid(h, pkts, reps, stats.NewRNG(seed).Derive("hybrid"))
				h.Close()
				if got := h.Snapshot().Dump(); !bytes.Equal(want, got) {
					t.Fatalf("seed %d: snapshot differs from reference", seed)
				}
			}
		})
	}
}

// TestHybridProvenance pins the provenance semantics with handcrafted
// observations of all four classes.
func TestHybridProvenance(t *testing.T) {
	campusPfx := netaddr.MustParsePrefix("128.125.0.0/16")
	base := time.Date(2006, 9, 19, 10, 0, 0, 0, time.UTC)
	bld := packet.NewBuilder(0)
	srv := func(i int) netaddr.V4 { return campusPfx.Base() + netaddr.V4(10+i) }
	cli := netaddr.MustParseV4("64.1.2.3")

	h := NewHybrid(campusPfx, []uint16{53}, 2, []uint16{80})
	// srv(0): passive at T+1h, probe opens at T+2h  => passive-first.
	// srv(1): passive at T+3h, probe opens at T+1h30 => active-first.
	// srv(2): passive only.
	// srv(3): probe only.
	var pkts []packet.Packet
	add := func(p *packet.Packet) { pkts = append(pkts, *p) }
	add(bld.SynAck(base.Add(1*time.Hour), packet.Endpoint{Addr: srv(0), Port: 80},
		packet.Endpoint{Addr: cli, Port: 40000}, 1, 1))
	add(bld.SynAck(base.Add(3*time.Hour), packet.Endpoint{Addr: srv(1), Port: 80},
		packet.Endpoint{Addr: cli, Port: 40001}, 1, 1))
	add(bld.SynAck(base.Add(1*time.Hour), packet.Endpoint{Addr: srv(2), Port: 80},
		packet.Endpoint{Addr: cli, Port: 40002}, 1, 1))
	h.HandleBatch(pkts)
	h.AddReport(&probe.ScanReport{
		ID: 0, Started: base.Add(90 * time.Minute), Finished: base.Add(2 * time.Hour),
		TCP: []probe.TCPResult{
			{Time: base.Add(2 * time.Hour), Addr: srv(0), Port: 80, State: probe.StateOpen},
			{Time: base.Add(90 * time.Minute), Addr: srv(1), Port: 80, State: probe.StateOpen},
			{Time: base.Add(90 * time.Minute), Addr: srv(3), Port: 80, State: probe.StateOpen},
			{Time: base.Add(90 * time.Minute), Addr: srv(4), Port: 80, State: probe.StateClosed},
		},
	})

	inv := h.Snapshot()
	if !inv.Hybrid() {
		t.Fatal("snapshot not hybrid")
	}
	key := func(i int) ServiceKey { return ServiceKey{Addr: srv(i), Proto: packet.ProtoTCP, Port: 80} }
	wantProv := map[int]Provenance{0: PassiveFirst, 1: ActiveFirst, 2: PassiveOnly, 3: ActiveOnly}
	for i, want := range wantProv {
		got, ok := inv.Provenance(key(i))
		if !ok || got != want {
			t.Errorf("provenance(srv%d) = %v/%v, want %v", i, got, ok, want)
		}
	}
	// srv(4) answered RST only: not a service, not in the inventory.
	if _, ok := inv.Provenance(key(4)); ok {
		t.Error("closed-only address entered the inventory")
	}
	if inv.Len() != 4 {
		t.Fatalf("inventory has %d services, want 4", inv.Len())
	}
	counts := inv.ProvenanceCounts()
	if counts[PassiveOnly] != 1 || counts[ActiveOnly] != 1 ||
		counts[PassiveFirst] != 1 || counts[ActiveFirst] != 1 {
		t.Errorf("provenance counts = %v", counts)
	}
	// FirstDiscovered takes the earlier side.
	if ts, ok := inv.FirstDiscovered(key(1)); !ok || !ts.Equal(base.Add(90*time.Minute)) {
		t.Errorf("FirstDiscovered(srv1) = %v/%v", ts, ok)
	}
	if ts, ok := inv.FirstDiscovered(key(0)); !ok || !ts.Equal(base.Add(1*time.Hour)) {
		t.Errorf("FirstDiscovered(srv0) = %v/%v", ts, ok)
	}
	if _, ok := inv.ActiveFirstOpen(key(2)); ok {
		t.Error("passive-only service has an active first-open")
	}
	if len(inv.Scans()) != 1 {
		t.Errorf("Scans = %d, want 1", len(inv.Scans()))
	}
}

// TestPassiveOnlyInventoryProvenance checks the passive-only inventory's
// degenerate provenance behavior.
func TestPassiveOnlyInventoryProvenance(t *testing.T) {
	campusPfx := netaddr.MustParsePrefix("128.125.0.0/16")
	d := NewPassiveDiscoverer(campusPfx, nil)
	bld := packet.NewBuilder(0)
	base := time.Date(2006, 9, 19, 10, 0, 0, 0, time.UTC)
	srv := campusPfx.Base() + 7
	p := bld.SynAck(base, packet.Endpoint{Addr: srv, Port: 443},
		packet.Endpoint{Addr: netaddr.MustParseV4("64.1.1.1"), Port: 40000}, 1, 1)
	d.HandlePacket(p)
	inv := d.Snapshot()
	if inv.Hybrid() {
		t.Fatal("passive snapshot claims to be hybrid")
	}
	key := ServiceKey{Addr: srv, Proto: packet.ProtoTCP, Port: 443}
	if p, ok := inv.Provenance(key); !ok || p != PassiveOnly {
		t.Errorf("Provenance = %v/%v, want passive-only", p, ok)
	}
	if _, ok := inv.Provenance(ServiceKey{Addr: srv, Proto: packet.ProtoTCP, Port: 80}); ok {
		t.Error("absent key has provenance")
	}
	if ts, ok := inv.FirstDiscovered(key); !ok || !ts.Equal(base) {
		t.Errorf("FirstDiscovered = %v/%v", ts, ok)
	}
	if inv.Scans() != nil {
		t.Error("passive snapshot has sweeps")
	}
}

// TestActiveDiscovererOrderIndependent feeds the same reports forward and
// reversed and requires identical state — the property Hybrid's report
// reconciler rests on.
func TestActiveDiscovererOrderIndependent(t *testing.T) {
	reps := genReports(5)
	fwd := NewActiveDiscoverer([]uint16{80})
	for _, rep := range reps {
		fwd.AddReport(rep)
	}
	rev := NewActiveDiscoverer([]uint16{80})
	for i := len(reps) - 1; i >= 0; i-- {
		rev.AddReport(reps[i])
	}
	if len(fwd.Scans()) != len(rev.Scans()) {
		t.Fatal("scan counts differ")
	}
	for i := range fwd.Scans() {
		if fwd.Scans()[i] != rev.Scans()[i] {
			t.Fatalf("scan meta %d differs: %+v vs %+v", i, fwd.Scans()[i], rev.Scans()[i])
		}
	}
	fwdSvc, revSvc := fwd.Services(), rev.Services()
	if len(fwdSvc) != len(revSvc) {
		t.Fatal("service counts differ")
	}
	for k, ts := range fwdSvc {
		if rt, ok := revSvc[k]; !ok || !rt.Equal(ts) {
			t.Fatalf("first-open %v differs: %v vs %v", k, ts, rt)
		}
	}
	campusPfx := netaddr.MustParsePrefix("128.125.0.0/16")
	for i := 0; i < 80; i++ {
		a := campusPfx.Base() + netaddr.V4(256+i)
		fo := fwd.Outcomes(a)
		ro := rev.Outcomes(a)
		if len(fo) == 0 {
			t.Fatalf("no outcome history for %v", a)
		}
		if len(fo) != len(ro) {
			t.Fatalf("outcome history of %v differs in length", a)
		}
		for i := range fo {
			if fo[i].ScanID != ro[i].ScanID || !fo[i].Time.Equal(ro[i].Time) {
				t.Fatalf("outcome %d of %v differs", i, a)
			}
		}
	}
}

// TestHybridLifecycle exercises Run/Flush/Close edge cases: reports after
// Close are dropped, Close is idempotent, Flush observes prior ingest.
func TestHybridLifecycle(t *testing.T) {
	campusPfx := netaddr.MustParsePrefix("128.125.0.0/16")
	reps := genReports(2)
	h := NewHybrid(campusPfx, nil, 2, []uint16{80})
	h.Run(context.Background())
	h.AddReport(reps[0])
	h.Flush()
	if got := len(h.Active().Scans()); got != 1 {
		t.Fatalf("after flush: %d sweeps, want 1", got)
	}
	h.Close()
	h.Close() // idempotent
	h.AddReport(reps[1])
	if got := len(h.Active().Scans()); got != 1 {
		t.Fatalf("post-Close report ingested: %d sweeps", got)
	}
}
