// Package probe implements active service discovery: an Nmap-style scan
// engine that sweeps address/port targets and classifies each response.
// Two backends are provided — a simulator backend speaking to the campus
// model (half-open semantics, exactly what the paper's operators ran), and
// a real-network backend using the standard library's dialer (full connect
// scan; half-open requires raw sockets, and the discovery semantics are
// identical: SYN-ACK ⇒ open, RST ⇒ closed, silence ⇒ filtered).
package probe

import (
	"context"
	"fmt"
	"net"
	"time"

	"servdisc/internal/campus"
	"servdisc/internal/netaddr"
)

// TCPState classifies a TCP probe response, mirroring Section 2.1.
type TCPState uint8

// TCP probe outcomes.
const (
	// StateOpen: SYN-ACK received, a server accepted.
	StateOpen TCPState = iota
	// StateClosed: RST received, live host with no service.
	StateClosed
	// StateFiltered: no response — dead address or a firewall drop.
	StateFiltered
)

// String names the state in nmap vocabulary.
func (s TCPState) String() string {
	switch s {
	case StateOpen:
		return "open"
	case StateClosed:
		return "closed"
	case StateFiltered:
		return "filtered"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// UDPState classifies a generic UDP probe response (Section 4.5).
type UDPState uint8

// UDP probe outcomes.
const (
	// UDPOpen: a UDP payload came back.
	UDPOpen UDPState = iota
	// UDPClosed: ICMP port unreachable — definitely no service.
	UDPClosed
	// UDPNoResponse: silence — open-but-mute service, firewall, or dead
	// host; disambiguated only by responses on other ports.
	UDPNoResponse
)

// String names the state.
func (s UDPState) String() string {
	switch s {
	case UDPOpen:
		return "open"
	case UDPClosed:
		return "closed"
	case UDPNoResponse:
		return "no-response"
	default:
		return fmt.Sprintf("udpstate(%d)", uint8(s))
	}
}

// TCPResult is one TCP probe observation.
type TCPResult struct {
	Time  time.Time
	Addr  netaddr.V4
	Port  uint16
	State TCPState
}

// UDPResult is one UDP probe observation.
type UDPResult struct {
	Time  time.Time
	Addr  netaddr.V4
	Port  uint16
	State UDPState
}

// Backend performs individual probes. Implementations must be safe for the
// scan engine's call pattern (sequential in sim mode, concurrent in real
// mode).
type Backend interface {
	ProbeTCP(now time.Time, addr netaddr.V4, port uint16) TCPState
	ProbeUDP(now time.Time, addr netaddr.V4, port uint16) UDPState
}

// SimBackend probes the campus model from an internal vantage point, so
// probes and responses never cross the monitored border — matching the
// paper's setup where internal scans were invisible to passive collection.
type SimBackend struct {
	Net *campus.Network
	// Source is the internal scanner address (defaults to the campus base
	// address).
	Source netaddr.V4
}

// ProbeTCP implements Backend with half-open semantics.
func (b *SimBackend) ProbeTCP(now time.Time, addr netaddr.V4, port uint16) TCPState {
	src := b.Source
	if src == 0 {
		src = b.Net.Plan().Base()
	}
	switch b.Net.RespondTCP(now, src, addr, port, true) {
	case campus.TCPSynAck:
		return StateOpen
	case campus.TCPRst:
		return StateClosed
	default:
		return StateFiltered
	}
}

// ProbeUDP implements Backend with generic-probe semantics.
func (b *SimBackend) ProbeUDP(now time.Time, addr netaddr.V4, port uint16) UDPState {
	src := b.Source
	if src == 0 {
		src = b.Net.Plan().Base()
	}
	switch b.Net.RespondUDP(now, src, addr, port) {
	case campus.UDPReply:
		return UDPOpen
	case campus.UDPUnreachable:
		return UDPClosed
	default:
		return UDPNoResponse
	}
}

// NetBackend probes real networks with the standard library. TCP uses a
// connect scan; UDP sends an empty datagram and waits briefly for a reply.
// Without raw sockets the backend cannot see ICMP port-unreachable
// directly, but the kernel surfaces it as a connection-refused error on
// the UDP socket on most platforms, which is reported as UDPClosed.
type NetBackend struct {
	// Timeout bounds each probe (default 2s).
	Timeout time.Duration
	// Dialer allows tests to inject a local dialer.
	Dialer net.Dialer
}

func (b *NetBackend) timeout() time.Duration {
	if b.Timeout <= 0 {
		return 2 * time.Second
	}
	return b.Timeout
}

// ProbeTCP implements Backend via a full connect.
func (b *NetBackend) ProbeTCP(_ time.Time, addr netaddr.V4, port uint16) TCPState {
	ctx, cancel := context.WithTimeout(context.Background(), b.timeout())
	defer cancel()
	conn, err := b.Dialer.DialContext(ctx, "tcp", fmt.Sprintf("%s:%d", addr, port))
	if err == nil {
		conn.Close()
		return StateOpen
	}
	if ctx.Err() != nil {
		return StateFiltered
	}
	// Connection refused ⇒ RST ⇒ closed; anything else (unreachable,
	// timeout inside dial) counts as filtered.
	if opErr, ok := err.(*net.OpError); ok && opErr.Timeout() {
		return StateFiltered
	}
	return StateClosed
}

// ProbeUDP implements Backend with a generic empty datagram.
func (b *NetBackend) ProbeUDP(_ time.Time, addr netaddr.V4, port uint16) UDPState {
	conn, err := net.DialTimeout("udp", fmt.Sprintf("%s:%d", addr, port), b.timeout())
	if err != nil {
		return UDPNoResponse
	}
	defer conn.Close()
	deadline := time.Now().Add(b.timeout())
	_ = conn.SetDeadline(deadline)
	if _, err := conn.Write([]byte{0}); err != nil {
		return UDPClosed // refused immediately (ICMP already received)
	}
	buf := make([]byte, 512)
	if _, err := conn.Read(buf); err == nil {
		return UDPOpen
	} else if opErr, ok := err.(*net.OpError); ok && !opErr.Timeout() {
		return UDPClosed // ECONNREFUSED surfaced on read
	}
	return UDPNoResponse
}
