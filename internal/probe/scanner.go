package probe

import (
	"time"

	"servdisc/internal/netaddr"
	"servdisc/internal/sim"
)

// ScanConfig shapes one sweep of the target space.
type ScanConfig struct {
	// Targets are the addresses to probe, in sweep order.
	Targets []netaddr.V4
	// TCPPorts are probed with half-open (or connect) probes.
	TCPPorts []uint16
	// UDPPorts are probed with generic UDP probes.
	UDPPorts []uint16
	// Rate is the probes-per-second budget across the whole scan. The
	// paper's scans covered 16,130 addresses × 5 ports in 90–120 minutes,
	// i.e. roughly 12–15 probes/second.
	Rate float64
	// Compact aggregates TCP results into per-address summaries instead
	// of recording every probe. Required for all-ports sweeps, where a
	// /24 × 65535 ports would otherwise materialize 16.7M result records.
	Compact bool
	// Shards splits the target list across this many scanning machines
	// working in parallel (the paper used two). Shard i takes targets
	// i, i+Shards, i+2·Shards, ... and all shards run concurrently, so
	// the wall-clock sweep time divides by Shards.
	Shards int
}

// sweepDuration estimates how long the sweep takes at the configured rate.
func (c *ScanConfig) sweepDuration() time.Duration {
	probes := len(c.Targets) * (len(c.TCPPorts) + len(c.UDPPorts))
	rate := c.Rate
	if rate <= 0 {
		rate = 15
	}
	shards := c.Shards
	if shards <= 0 {
		shards = 1
	}
	return time.Duration(float64(probes) / float64(shards) / rate * float64(time.Second))
}

// AddrSummary aggregates one address's TCP outcomes within one sweep.
type AddrSummary struct {
	Addr netaddr.V4
	// Time is when the address was first probed in this sweep.
	Time time.Time
	// Open lists ports that answered SYN-ACK.
	Open []uint16
	// Closed and Filtered count RST and no-response ports.
	Closed, Filtered int
}

// ScanReport collects one sweep's observations.
type ScanReport struct {
	// ID is the sweep's sequence number as assigned by the scheduler.
	ID int
	// Started and Finished bound the sweep.
	Started, Finished time.Time
	// TCP holds every TCP observation (empty in compact mode).
	TCP []TCPResult
	// Summaries holds per-address aggregates (compact mode only).
	Summaries []AddrSummary
	// UDP holds every UDP observation.
	UDP []UDPResult
	// Truncated marks a sweep cut short by cancellation or its per-sweep
	// deadline (concurrent Scheduler only; SimScanner sweeps always run to
	// completion in virtual time).
	Truncated bool
}

// OpenAddrs returns the set of addresses with at least one open TCP port.
func (r *ScanReport) OpenAddrs() *netaddr.Set {
	s := netaddr.NewSet()
	for _, res := range r.TCP {
		if res.State == StateOpen {
			s.Add(res.Addr)
		}
	}
	for _, sum := range r.Summaries {
		if len(sum.Open) > 0 {
			s.Add(sum.Addr)
		}
	}
	return s
}

// SimScanner executes sweeps against a Backend on the simulation engine,
// pacing probes so a sweep occupies realistic wall-clock time — this is
// what makes Figure 1's "active probing needs more than an hour to find
// the popular servers" emerge from mechanics rather than assumption.
type SimScanner struct {
	backend Backend
	eng     *sim.Engine
	cfg     ScanConfig
	nextID  int
}

// NewSimScanner builds a scanner bound to an engine and backend.
func NewSimScanner(backend Backend, eng *sim.Engine, cfg ScanConfig) *SimScanner {
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.Rate <= 0 {
		cfg.Rate = 15
	}
	return &SimScanner{backend: backend, eng: eng, cfg: cfg}
}

// Schedule arranges a sweep to start at the given time; done receives the
// report when the sweep completes. Multiple scheduled sweeps may overlap
// freely (they share nothing but the backend).
func (s *SimScanner) Schedule(start time.Time, done func(*ScanReport)) {
	id := s.nextID
	s.nextID++
	s.eng.At(start, func(now time.Time) {
		s.runSweep(id, now, done)
	})
}

// ScheduleEvery arranges sweeps at a fixed interval from start until the
// given count have been launched (count <= 0 means until the engine stops).
func (s *SimScanner) ScheduleEvery(start time.Time, interval time.Duration, count int, done func(*ScanReport)) {
	launched := 0
	var tk *sim.Ticker
	tk = s.eng.Every(start, interval, func(now time.Time) {
		if count > 0 && launched >= count {
			tk.Stop()
			return
		}
		launched++
		id := s.nextID
		s.nextID++
		s.runSweep(id, now, done)
	})
}

// runSweep walks the shard-interleaved target list in one-second bursts.
func (s *SimScanner) runSweep(id int, start time.Time, done func(*ScanReport)) {
	rep := &ScanReport{ID: id, Started: start}
	perSecond := int(s.cfg.Rate * float64(s.cfg.Shards))
	if perSecond < 1 {
		perSecond = 1
	}
	// Probe order: shard k owns targets k, k+Shards, ...; since all
	// shards advance in lockstep at the same per-machine rate, their
	// round-robin interleaving reconstructs the original target order
	// walked at the aggregate rate (perSecond above). Jobs are derived
	// from a flat index rather than materialized — an all-ports sweep of
	// a /24 is 16.7M probes and must not allocate a job list.
	perAddr := len(s.cfg.TCPPorts) + len(s.cfg.UDPPorts)
	total := len(s.cfg.Targets) * perAddr

	idx := 0
	var cur *AddrSummary
	var burst func(now time.Time)
	burst = func(now time.Time) {
		for i := 0; i < perSecond && idx < total; i++ {
			target := s.cfg.Targets[idx/perAddr]
			pi := idx % perAddr
			idx++
			if pi < len(s.cfg.TCPPorts) {
				port := s.cfg.TCPPorts[pi]
				state := s.backend.ProbeTCP(now, target, port)
				if s.cfg.Compact {
					// Jobs walk each address's ports contiguously, so a
					// single open summary suffices.
					if cur == nil || cur.Addr != target {
						if cur != nil {
							rep.Summaries = append(rep.Summaries, *cur)
						}
						cur = &AddrSummary{Addr: target, Time: now}
					}
					switch state {
					case StateOpen:
						cur.Open = append(cur.Open, port)
					case StateClosed:
						cur.Closed++
					default:
						cur.Filtered++
					}
				} else {
					rep.TCP = append(rep.TCP, TCPResult{
						Time: now, Addr: target, Port: port, State: state,
					})
				}
			} else {
				port := s.cfg.UDPPorts[pi-len(s.cfg.TCPPorts)]
				rep.UDP = append(rep.UDP, UDPResult{
					Time: now, Addr: target, Port: port,
					State: s.backend.ProbeUDP(now, target, port),
				})
			}
		}
		if idx < total {
			s.eng.After(time.Second, burst)
			return
		}
		if cur != nil {
			rep.Summaries = append(rep.Summaries, *cur)
			cur = nil
		}
		rep.Finished = now
		if done != nil {
			done(rep)
		}
	}
	burst(start)
}
