package probe

import (
	"context"
	"runtime"
	"sort"
	"sync"
	"time"

	"servdisc/internal/netaddr"
	"servdisc/internal/obs"
)

// Metrics is the scheduler's optional telemetry bundle. All fields are
// nil-safe; a nil bundle skips the extra clock reads.
type Metrics struct {
	// RTT observes each probe's wall-clock round trip (TCP and UDP).
	RTT *obs.Histogram
	// Sweep observes whole-sweep wall durations.
	Sweep *obs.Histogram
	// Flight receives a sweep-completed trace event per sweep.
	Flight *obs.Recorder
}

// ReportSink consumes completed sweep reports — the active-side analogue
// of pipeline.BatchSink. core.ActiveDiscoverer and core.Hybrid implement
// it, which is how scan results flow into the discovery pipeline as a
// first-class source alongside passive capture.
type ReportSink interface {
	AddReport(rep *ScanReport)
}

// ReportFunc adapts a function to ReportSink.
type ReportFunc func(rep *ScanReport)

// AddReport implements ReportSink.
func (f ReportFunc) AddReport(rep *ScanReport) { f(rep) }

// SchedulerConfig shapes the concurrent scan scheduler.
type SchedulerConfig struct {
	// Targets are the addresses to sweep, in canonical report order.
	Targets []netaddr.V4
	// TCPPorts are probed with connect (or simulated half-open) probes.
	TCPPorts []uint16
	// UDPPorts are probed with generic UDP probes.
	UDPPorts []uint16
	// Rate is the aggregate probes-per-second budget across all workers,
	// enforced by a shared token bucket. <= 0 disables rate limiting.
	Rate float64
	// Burst is the token-bucket depth (default 1): how many probes may be
	// emitted back-to-back after an idle stretch before pacing kicks in.
	Burst int
	// Workers sizes the probe worker pool; <= 0 picks GOMAXPROCS. Each
	// worker owns an interleaved slice of the target list (worker w takes
	// targets w, w+Workers, ...), so an address's ports are always probed
	// by a single worker, contiguously.
	Workers int
	// SweepTimeout is the per-sweep deadline. A sweep that exceeds it is
	// truncated: Sweep returns the partial report with Truncated set.
	// Zero means no deadline.
	SweepTimeout time.Duration
	// Compact aggregates TCP results into per-address summaries instead of
	// recording every probe, as in ScanConfig.Compact.
	Compact bool
	// OnSweep, when set, observes every sweep as it completes — including
	// truncated ones — with the report and the truncation cause (nil for a
	// full sweep). It fires on the sweeping goroutine before Sweep returns
	// and before Run hands the report to its sink, so an observer sees
	// sweeps in launch order. This is the scheduler's emission point for
	// the engine's ScanCompleted events: reports handed to a reconciling
	// sink surface there automatically, and OnSweep covers consumers that
	// want the scheduler's own signal (progress logs, standalone sweeps).
	OnSweep func(rep *ScanReport, err error)
}

func (c *SchedulerConfig) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Scheduler executes concurrent, rate-limited scan sweeps against any
// Backend — the simulated campus and the real-network dialer behave
// identically. Where SimScanner paces virtual time inside the discrete-
// event engine, Scheduler runs on the wall clock with a worker pool and a
// shared token bucket, which is the shape a production deployment runs.
//
// Reports are deterministic in everything but timestamps: results are
// assembled in target order regardless of how the workers interleave, so
// two sweeps over the same targets against the same backend state differ
// only in their Time fields.
type Scheduler struct {
	backend Backend
	cfg     SchedulerConfig
	limiter *Limiter

	// clock is injectable for deterministic tests (defaults to time.Now).
	clock func() time.Time

	// met is the optional telemetry bundle (see SetMetrics). Probe RTTs
	// are measured on the wall clock even under an injected test clock —
	// they report real backend latency, not simulated time.
	met *Metrics

	mu     sync.Mutex
	nextID int
}

// NewScheduler builds a scheduler sweeping cfg.Targets against backend.
// The backend must tolerate cfg.Workers concurrent Probe calls (both
// provided backends do: NetBackend dials independent connections and
// SimBackend reads immutable campus state).
func NewScheduler(backend Backend, cfg SchedulerConfig) *Scheduler {
	return &Scheduler{
		backend: backend,
		cfg:     cfg,
		limiter: NewLimiter(cfg.Rate, cfg.Burst),
		clock:   time.Now,
	}
}

// Config returns the scheduler's configuration.
func (s *Scheduler) Config() SchedulerConfig { return s.cfg }

// SetMetrics attaches the telemetry bundle; call before sweeps start.
func (s *Scheduler) SetMetrics(m *Metrics) { s.met = m }

// addrOutcome is one worker's results for one target, tagged with the
// target's index so the merged report is in canonical order.
type addrOutcome struct {
	idx int
	tcp []TCPResult
	udp []UDPResult
	sum AddrSummary
	ok  bool // sum populated (compact mode)
}

// Sweep runs one full sweep: every target × every port, spread across the
// worker pool under the shared rate limit. It blocks until the sweep
// completes, the per-sweep deadline expires, or ctx is cancelled; in the
// latter two cases the partial report is returned with Truncated set,
// alongside the cause. The report's results are always in target order
// (then TCP-port, then UDP-port order) no matter how workers interleaved.
func (s *Scheduler) Sweep(ctx context.Context) (*ScanReport, error) {
	s.mu.Lock()
	id := s.nextID
	s.nextID++
	s.mu.Unlock()

	if s.cfg.SweepTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.SweepTimeout)
		defer cancel()
	}

	workers := s.cfg.workers()
	if workers > len(s.cfg.Targets) && len(s.cfg.Targets) > 0 {
		workers = len(s.cfg.Targets)
	}
	var w0 time.Time
	if s.met != nil {
		w0 = time.Now()
	}
	rep := &ScanReport{ID: id, Started: s.clock()}
	outs := make([][]addrOutcome, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			outs[w] = s.sweepWorker(ctx, w, workers)
		}(w)
	}
	wg.Wait()

	merged := make([]addrOutcome, 0, len(s.cfg.Targets))
	for _, part := range outs {
		merged = append(merged, part...)
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i].idx < merged[j].idx })
	for _, o := range merged {
		rep.TCP = append(rep.TCP, o.tcp...)
		rep.UDP = append(rep.UDP, o.udp...)
		if o.ok {
			rep.Summaries = append(rep.Summaries, o.sum)
		}
	}
	rep.Finished = s.clock()
	err := ctx.Err()
	if err != nil {
		rep.Truncated = true
	}
	if m := s.met; m != nil {
		el := time.Since(w0)
		m.Sweep.Observe(el)
		m.Flight.Record(obs.TraceSweepCompleted, "",
			int64(len(rep.TCP)+len(rep.UDP)+len(rep.Summaries)), el.Microseconds())
	}
	if s.cfg.OnSweep != nil {
		s.cfg.OnSweep(rep, err)
	}
	return rep, err
}

// sweepWorker probes targets w, w+stride, ... and returns their outcomes.
// It stops between probes as soon as the context is done (the probe in
// flight, if any, still completes — NetBackend probes are bounded by their
// own timeout).
func (s *Scheduler) sweepWorker(ctx context.Context, w, stride int) []addrOutcome {
	var outs []addrOutcome
	for ti := w; ti < len(s.cfg.Targets); ti += stride {
		target := s.cfg.Targets[ti]
		out := addrOutcome{idx: ti}
		if s.cfg.Compact && len(s.cfg.TCPPorts) > 0 {
			out.sum = AddrSummary{Addr: target}
			out.ok = false // set on the first TCP probe below
		}
		done := false
		for _, port := range s.cfg.TCPPorts {
			if s.limiter.Wait(ctx) != nil {
				done = true
				break
			}
			now := s.clock()
			var p0 time.Time
			if s.met != nil {
				p0 = time.Now()
			}
			state := s.backend.ProbeTCP(now, target, port)
			if m := s.met; m != nil {
				m.RTT.Observe(time.Since(p0))
			}
			if s.cfg.Compact {
				if !out.ok {
					out.sum.Time = now
					out.ok = true
				}
				switch state {
				case StateOpen:
					out.sum.Open = append(out.sum.Open, port)
				case StateClosed:
					out.sum.Closed++
				default:
					out.sum.Filtered++
				}
			} else {
				out.tcp = append(out.tcp, TCPResult{Time: now, Addr: target, Port: port, State: state})
			}
		}
		if !done {
			for _, port := range s.cfg.UDPPorts {
				if s.limiter.Wait(ctx) != nil {
					done = true
					break
				}
				now := s.clock()
				var p0 time.Time
				if s.met != nil {
					p0 = time.Now()
				}
				state := s.backend.ProbeUDP(now, target, port)
				if m := s.met; m != nil {
					m.RTT.Observe(time.Since(p0))
				}
				out.udp = append(out.udp, UDPResult{
					Time: now, Addr: target, Port: port, State: state,
				})
			}
		}
		if len(out.tcp) > 0 || len(out.udp) > 0 || out.ok {
			outs = append(outs, out)
		}
		if done {
			break
		}
	}
	return outs
}

// Run executes periodic sweeps: one every interval (start-to-start; <= 0
// means back-to-back) until count sweeps have run (count <= 0: until ctx
// is cancelled). Each completed report — including ones truncated by the
// per-sweep deadline — is handed to sink before the next sweep starts, so
// downstream reconcilers see sweeps in launch order. Run returns nil after
// count sweeps, or ctx.Err() once cancelled.
func (s *Scheduler) Run(ctx context.Context, interval time.Duration, count int, sink ReportSink) error {
	for i := 0; count <= 0 || i < count; i++ {
		start := s.clock()
		rep, err := s.Sweep(ctx)
		if sink != nil && rep != nil {
			sink.AddReport(rep)
		}
		// A sweep truncated by its own deadline is expected: keep the
		// schedule. Parent cancellation ends the run.
		if ctx.Err() != nil {
			return ctx.Err()
		}
		_ = err
		if count > 0 && i == count-1 {
			break
		}
		if interval > 0 {
			if d := interval - s.clock().Sub(start); d > 0 {
				if err := sleepCtx(ctx, d); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
