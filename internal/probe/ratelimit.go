package probe

import (
	"context"
	"sync"
	"time"
)

// Limiter is a token-bucket rate limiter shared by every worker of a
// concurrent sweep: tokens accrue at Rate per second up to Burst, and each
// probe consumes one. It is the mechanism that turns the paper's "12–15
// probes/second across the whole scan" budget into an enforced aggregate
// bound no matter how many workers are probing.
//
// The implementation is a virtual-scheduling (GCRA-style) limiter: rather
// than tracking a fractional token balance, it tracks the next permitted
// emission time and lets it lag real time by up to Burst/Rate, which is
// both exact (no token drift from float accumulation across millions of
// probes) and O(1) per Wait.
type Limiter struct {
	mu sync.Mutex
	// interval is the spacing between emissions (1/rate); zero disables
	// limiting entirely.
	interval time.Duration
	// slack is how far next may lag behind now (burst·interval).
	slack time.Duration
	// next is the virtual time of the next permitted emission.
	next time.Time

	// now and sleep are injectable for deterministic tests; they default
	// to time.Now and a context-aware timer sleep.
	now   func() time.Time
	sleep func(ctx context.Context, d time.Duration) error
}

// NewLimiter builds a limiter admitting rate events per second with the
// given burst depth (clamped to at least 1). rate <= 0 builds an unlimited
// limiter whose Wait only checks for cancellation.
func NewLimiter(rate float64, burst int) *Limiter {
	l := &Limiter{now: time.Now, sleep: sleepCtx}
	if rate > 0 {
		l.interval = time.Duration(float64(time.Second) / rate)
		if burst < 1 {
			burst = 1
		}
		l.slack = time.Duration(burst-1) * l.interval
	}
	return l
}

// Wait blocks until the caller may emit one event, or until ctx is done
// (returning its error). Concurrent callers are admitted in FIFO order of
// their reservation, and the aggregate admission rate never exceeds the
// configured rate regardless of caller count.
func (l *Limiter) Wait(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if l.interval == 0 {
		return nil
	}
	l.mu.Lock()
	now := l.now()
	// Let the bucket refill while idle, but never beyond the burst depth.
	if floor := now.Add(-l.slack); l.next.Before(floor) {
		l.next = floor
	}
	at := l.next
	l.next = at.Add(l.interval)
	l.mu.Unlock()

	if d := at.Sub(now); d > 0 {
		return l.sleep(ctx, d)
	}
	return nil
}

// sleepCtx sleeps for d or until the context is cancelled.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
