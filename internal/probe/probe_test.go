package probe

import (
	"net"
	"strconv"
	"testing"
	"time"

	"servdisc/internal/campus"
	"servdisc/internal/netaddr"
	"servdisc/internal/sim"
)

func testConfig() campus.Config {
	c := campus.DefaultSemesterConfig()
	c.StaticAddrs = 2048
	c.DHCPAddrs = 256
	c.WirelessAddrs = 128
	c.PPPAddrs = 128
	c.VPNAddrs = 64
	c.StaticSubnets = 8
	c.StaticLiveHosts = 500
	c.StaticServers = 300
	c.PopularServers = 8
	c.StealthFirewalled = 6
	c.ServerDeaths = 0
	c.DHCPHosts = 120
	c.PPPHosts = 50
	c.VPNHosts = 30
	c.WirelessHosts = 40
	c.ClientPool = 2000
	c.UDP.DNSServers = 12
	c.UDP.DNSGenericReply = 7
	c.UDP.WindowsHosts = 150
	c.UDP.NetBIOSGenericReply = 5
	c.UDP.NetBIOSLeaks = 2
	return c
}

func TestSimBackendStates(t *testing.T) {
	net, err := campus.NewNetwork(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	b := &SimBackend{Net: net}
	now := net.Config().Start

	open, closed, filtered := 0, 0, 0
	for _, a := range net.Plan().ProbeTargets() {
		switch b.ProbeTCP(now, a, campus.PortHTTP) {
		case StateOpen:
			open++
		case StateClosed:
			closed++
		case StateFiltered:
			filtered++
		}
	}
	if open == 0 || closed == 0 || filtered == 0 {
		t.Fatalf("state mix degenerate: open=%d closed=%d filtered=%d", open, closed, filtered)
	}
	// Dark space dominates filtered; live hosts without web dominate closed.
	if filtered < 500 {
		t.Errorf("filtered = %d, expected dark space", filtered)
	}
}

func TestSimBackendUDP(t *testing.T) {
	net, err := campus.NewNetwork(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	b := &SimBackend{Net: net}
	now := net.Config().Start
	var open, closed, silent int
	for _, a := range net.Plan().ProbeTargets() {
		switch b.ProbeUDP(now, a, campus.UDPPortDNS) {
		case UDPOpen:
			open++
		case UDPClosed:
			closed++
		case UDPNoResponse:
			silent++
		}
	}
	if open == 0 {
		t.Error("no generic-reply DNS servers found")
	}
	if closed == 0 {
		t.Error("no ICMP port-unreachable responses")
	}
	if silent == 0 {
		t.Error("no silent addresses")
	}
}

func TestSimScannerSweep(t *testing.T) {
	cfg := testConfig()
	net, err := campus.NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.New(cfg.Start)
	sc := NewSimScanner(&SimBackend{Net: net}, eng, ScanConfig{
		Targets:  net.Plan().ProbeTargets(),
		TCPPorts: campus.SelectedTCPPorts,
		Rate:     15,
		Shards:   2,
	})
	var rep *ScanReport
	sc.Schedule(cfg.Start, func(r *ScanReport) { rep = r })
	eng.RunUntil(cfg.Start.Add(24 * time.Hour))
	if rep == nil {
		t.Fatal("sweep did not complete")
	}
	wantProbes := len(net.Plan().ProbeTargets()) * len(campus.SelectedTCPPorts)
	if len(rep.TCP) != wantProbes {
		t.Errorf("probes = %d, want %d", len(rep.TCP), wantProbes)
	}
	// Sweep duration: probes / (rate × shards) seconds.
	wantDur := time.Duration(float64(wantProbes) / 30 * float64(time.Second))
	got := rep.Finished.Sub(rep.Started)
	if got < wantDur-2*time.Second || got > wantDur+2*time.Second {
		t.Errorf("sweep took %v, want ~%v", got, wantDur)
	}
	if rep.OpenAddrs().Len() == 0 {
		t.Error("sweep found no servers")
	}
}

func TestSimScannerFindsAlwaysUpServers(t *testing.T) {
	cfg := testConfig()
	net, err := campus.NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.New(cfg.Start)
	sc := NewSimScanner(&SimBackend{Net: net}, eng, ScanConfig{
		Targets:  net.Plan().ProbeTargets(),
		TCPPorts: campus.SelectedTCPPorts,
		Rate:     100,
	})
	var rep *ScanReport
	sc.Schedule(cfg.Start, func(r *ScanReport) { rep = r })
	eng.RunUntil(cfg.Start.Add(12 * time.Hour))
	if rep == nil {
		t.Fatal("no report")
	}
	found := rep.OpenAddrs()

	missed := 0
	total := 0
	for _, h := range net.Hosts() {
		if h.Class != campus.ClassStatic || !h.AlwaysUp || !h.Attached() {
			continue
		}
		visible := false
		for _, s := range h.Services {
			if s.Proto == 6 && !s.StealthFW {
				visible = true
			}
		}
		if !visible {
			continue
		}
		total++
		if !found.Contains(h.Addr()) {
			missed++
		}
	}
	if total == 0 {
		t.Fatal("no probe-visible servers")
	}
	if missed > 0 {
		t.Errorf("scan missed %d/%d always-up probe-visible servers", missed, total)
	}
}

func TestScheduleEvery(t *testing.T) {
	cfg := testConfig()
	net, err := campus.NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.New(cfg.Start)
	sc := NewSimScanner(&SimBackend{Net: net}, eng, ScanConfig{
		Targets:  net.Plan().ProbeTargets()[:200],
		TCPPorts: []uint16{campus.PortHTTP},
		Rate:     100,
	})
	var reports []*ScanReport
	sc.ScheduleEvery(cfg.Start, 12*time.Hour, 4, func(r *ScanReport) {
		reports = append(reports, r)
	})
	eng.RunUntil(cfg.Start.Add(72 * time.Hour))
	if len(reports) != 4 {
		t.Fatalf("got %d sweeps, want 4", len(reports))
	}
	for i, r := range reports {
		if r.ID != i {
			t.Errorf("report %d has ID %d", i, r.ID)
		}
	}
	gap := reports[1].Started.Sub(reports[0].Started)
	if gap != 12*time.Hour {
		t.Errorf("sweep gap = %v", gap)
	}
}

func TestNetBackendAgainstLocalListener(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skip("cannot listen on loopback:", err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			c.Close()
		}
	}()
	_, portStr, _ := net.SplitHostPort(ln.Addr().String())
	port64, _ := strconv.ParseUint(portStr, 10, 16)
	port := uint16(port64)

	b := &NetBackend{Timeout: 2 * time.Second}
	lo := netaddr.MustParseV4("127.0.0.1")
	if got := b.ProbeTCP(time.Now(), lo, port); got != StateOpen {
		t.Errorf("listening port = %v, want open", got)
	}
	// A port with (very likely) nothing on it: the listener's port ^ 1 is
	// not guaranteed free, so probe a second allocated-then-closed port.
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skip(err)
	}
	_, p2Str, _ := net.SplitHostPort(ln2.Addr().String())
	p264, _ := strconv.ParseUint(p2Str, 10, 16)
	ln2.Close()
	if got := b.ProbeTCP(time.Now(), lo, uint16(p264)); got != StateClosed {
		t.Errorf("closed port = %v, want closed", got)
	}
}

func TestNetBackendUDPClosedPort(t *testing.T) {
	// Grab a UDP port then release it; loopback refusals surface as ICMP.
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Skip(err)
	}
	_, portStr, _ := net.SplitHostPort(pc.LocalAddr().String())
	p64, _ := strconv.ParseUint(portStr, 10, 16)
	pc.Close()

	b := &NetBackend{Timeout: time.Second}
	got := b.ProbeUDP(time.Now(), netaddr.MustParseV4("127.0.0.1"), uint16(p64))
	// Either closed (ICMP surfaced) or no-response (platform swallowed it).
	if got == UDPOpen {
		t.Errorf("closed UDP port reported open")
	}
}

func TestStateStrings(t *testing.T) {
	if StateOpen.String() != "open" || StateClosed.String() != "closed" || StateFiltered.String() != "filtered" {
		t.Error("TCP state names wrong")
	}
	if UDPOpen.String() != "open" || UDPClosed.String() != "closed" || UDPNoResponse.String() != "no-response" {
		t.Error("UDP state names wrong")
	}
}

func BenchmarkSimProbeTCP(b *testing.B) {
	net, err := campus.NewNetwork(testConfig())
	if err != nil {
		b.Fatal(err)
	}
	backend := &SimBackend{Net: net}
	now := net.Config().Start
	targets := net.Plan().ProbeTargets()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		backend.ProbeTCP(now, targets[i%len(targets)], campus.PortHTTP)
	}
}
