package probe

import (
	"context"
	"errors"
	"hash/fnv"
	"net"
	"reflect"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"servdisc/internal/campus"
	"servdisc/internal/netaddr"
)

// fakeClock is a mutex-protected virtual clock for deterministic limiter
// tests: sleeps advance it instead of blocking.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
	return nil
}

// stubBackend classifies from fixed maps, counting probes.
type stubBackend struct {
	tcp    map[netaddr.V4]map[uint16]TCPState // default StateFiltered
	udp    map[netaddr.V4]map[uint16]UDPState // default UDPNoResponse
	probes atomic.Int64
	// work adds CPU-bound busywork per probe (benchmark use).
	work int
}

func (b *stubBackend) ProbeTCP(_ time.Time, addr netaddr.V4, port uint16) TCPState {
	b.probes.Add(1)
	b.spin(addr, port)
	if m, ok := b.tcp[addr]; ok {
		if s, ok := m[port]; ok {
			return s
		}
	}
	return StateFiltered
}

func (b *stubBackend) ProbeUDP(_ time.Time, addr netaddr.V4, port uint16) UDPState {
	b.probes.Add(1)
	b.spin(addr, port)
	if m, ok := b.udp[addr]; ok {
		if s, ok := m[port]; ok {
			return s
		}
	}
	return UDPNoResponse
}

func (b *stubBackend) spin(addr netaddr.V4, port uint16) {
	if b.work <= 0 {
		return
	}
	h := fnv.New64a()
	var buf [6]byte
	buf[0], buf[1], buf[2], buf[3] = byte(addr>>24), byte(addr>>16), byte(addr>>8), byte(addr)
	buf[4], buf[5] = byte(port>>8), byte(port)
	for i := 0; i < b.work; i++ {
		h.Write(buf[:])
	}
	_ = h.Sum64()
}

func addrs(n int) []netaddr.V4 {
	out := make([]netaddr.V4, n)
	base := netaddr.MustParseV4("10.0.0.1")
	for i := range out {
		out[i] = base + netaddr.V4(i)
	}
	return out
}

// TestLimiterVirtualAdherence pins the token bucket's exact pacing on a
// virtual clock: n admissions at rate r advance time by (n-burst)/r.
func TestLimiterVirtualAdherence(t *testing.T) {
	for _, tc := range []struct {
		rate  float64
		burst int
		n     int
	}{{10, 1, 21}, {100, 1, 101}, {50, 5, 55}} {
		clk := &fakeClock{now: time.Date(2026, 7, 30, 0, 0, 0, 0, time.UTC)}
		l := NewLimiter(tc.rate, tc.burst)
		l.now, l.sleep = clk.Now, clk.Sleep
		start := clk.Now()
		for i := 0; i < tc.n; i++ {
			if err := l.Wait(context.Background()); err != nil {
				t.Fatal(err)
			}
		}
		got := clk.Now().Sub(start)
		want := time.Duration(float64(tc.n-tc.burst) / tc.rate * float64(time.Second))
		if diff := got - want; diff < -time.Millisecond || diff > time.Millisecond {
			t.Errorf("rate=%v burst=%d: %d waits advanced %v, want %v",
				tc.rate, tc.burst, tc.n, got, want)
		}
	}
}

func TestLimiterCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := NewLimiter(0, 0).Wait(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("unlimited Wait on cancelled ctx = %v", err)
	}
	l := NewLimiter(1, 1) // 1/s: the second Wait must block, then abort
	if err := l.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx2, cancel2 := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel2()
	if err := l.Wait(ctx2); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("blocked Wait = %v, want deadline exceeded", err)
	}
}

// TestSchedulerRateAdherenceVirtual runs a single-worker sweep on the
// virtual clock and checks the sweep occupies exactly the budgeted time.
func TestSchedulerRateAdherenceVirtual(t *testing.T) {
	backend := &stubBackend{}
	s := NewScheduler(backend, SchedulerConfig{
		Targets:  addrs(30),
		TCPPorts: []uint16{80, 443},
		UDPPorts: []uint16{53},
		Rate:     15,
		Workers:  1,
	})
	clk := &fakeClock{now: time.Date(2026, 7, 30, 0, 0, 0, 0, time.UTC)}
	s.clock = clk.Now
	s.limiter.now, s.limiter.sleep = clk.Now, clk.Sleep

	rep, err := s.Sweep(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	probes := int64(30 * 3)
	if got := backend.probes.Load(); got != probes {
		t.Fatalf("probes = %d, want %d", got, probes)
	}
	want := time.Duration(float64(probes-1) / 15 * float64(time.Second))
	got := rep.Finished.Sub(rep.Started)
	if diff := got - want; diff < -time.Millisecond || diff > time.Millisecond {
		t.Errorf("sweep occupied %v, want %v", got, want)
	}
}

// TestSchedulerRateAdherenceWallClock checks the aggregate bound holds
// with a concurrent worker pool on the real clock: 8 workers must not beat
// the shared token bucket.
func TestSchedulerRateAdherenceWallClock(t *testing.T) {
	backend := &stubBackend{}
	s := NewScheduler(backend, SchedulerConfig{
		Targets:  addrs(40),
		TCPPorts: []uint16{80, 443, 22},
		Rate:     2000,
		Workers:  8,
	})
	start := time.Now()
	rep, err := s.Sweep(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if got := len(rep.TCP); got != 120 {
		t.Fatalf("results = %d, want 120", got)
	}
	// 119 paced probes at 2000/s is ~59.5ms; allow generous scheduling
	// slop downward but catch a limiter that lets workers run free.
	if elapsed < 40*time.Millisecond {
		t.Errorf("sweep finished in %v: rate limit not enforced", elapsed)
	}
}

// TestSchedulerCancellationMidSweep cancels a rate-limited sweep partway
// and requires a well-formed, canonically-ordered partial report.
func TestSchedulerCancellationMidSweep(t *testing.T) {
	backend := &stubBackend{}
	s := NewScheduler(backend, SchedulerConfig{
		Targets:  addrs(100),
		TCPPorts: []uint16{80, 443},
		Rate:     200, // full sweep would take ~1s
		Workers:  4,
	})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	rep, err := s.Sweep(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Sweep = %v, want canceled", err)
	}
	if !rep.Truncated {
		t.Error("partial report not marked truncated")
	}
	if len(rep.TCP) == 0 || len(rep.TCP) >= 200 {
		t.Errorf("partial report has %d results", len(rep.TCP))
	}
	// Canonical order survives truncation: target-major, then port order.
	for i := 1; i < len(rep.TCP); i++ {
		a, b := rep.TCP[i-1], rep.TCP[i]
		if a.Addr > b.Addr || (a.Addr == b.Addr && a.Port >= b.Port) {
			t.Fatalf("result %d out of canonical order: %v:%d after %v:%d",
				i, b.Addr, b.Port, a.Addr, a.Port)
		}
	}
}

// TestSchedulerSweepDeadline lets the per-sweep deadline truncate sweeps
// while the schedule keeps running: Run still delivers every report.
func TestSchedulerSweepDeadline(t *testing.T) {
	backend := &stubBackend{}
	s := NewScheduler(backend, SchedulerConfig{
		Targets:      addrs(100),
		TCPPorts:     []uint16{80, 443},
		Rate:         500, // a full sweep would need 400ms
		Workers:      4,
		SweepTimeout: 50 * time.Millisecond,
	})
	var reports []*ScanReport
	err := s.Run(context.Background(), 0, 3, ReportFunc(func(rep *ScanReport) {
		reports = append(reports, rep)
	}))
	if err != nil {
		t.Fatalf("Run = %v", err)
	}
	if len(reports) != 3 {
		t.Fatalf("delivered %d reports, want 3", len(reports))
	}
	for i, rep := range reports {
		if rep.ID != i {
			t.Errorf("report %d has ID %d", i, rep.ID)
		}
		if !rep.Truncated {
			t.Errorf("report %d not truncated by the sweep deadline", i)
		}
		if len(rep.TCP) == 0 {
			t.Errorf("report %d is empty", i)
		}
	}
}

func TestSchedulerRunCancelled(t *testing.T) {
	s := NewScheduler(&stubBackend{}, SchedulerConfig{
		Targets:  addrs(50),
		TCPPorts: []uint16{80},
		Rate:     100,
		Workers:  2,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	var got int
	err := s.Run(ctx, time.Hour, 5, ReportFunc(func(*ScanReport) { got++ }))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Run = %v, want deadline exceeded", err)
	}
	if got != 1 {
		t.Errorf("delivered %d reports before cancellation, want 1", got)
	}
}

// TestSchedulerDeterministicAcrossWorkerCounts fixes the clock and sweeps
// the simulated campus with 1, 2, and 8 workers: the reports must be
// identical, interleaving notwithstanding.
func TestSchedulerDeterministicAcrossWorkerCounts(t *testing.T) {
	network, err := campus.NewNetwork(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	backend := &SimBackend{Net: network}
	fixed := network.Config().Start
	targets := network.Plan().ProbeTargets()[:300]

	var ref *ScanReport
	for _, workers := range []int{1, 2, 8} {
		s := NewScheduler(backend, SchedulerConfig{
			Targets:  targets,
			TCPPorts: campus.SelectedTCPPorts,
			UDPPorts: []uint16{campus.UDPPortDNS},
			Workers:  workers,
		})
		s.clock = func() time.Time { return fixed }
		rep, err := s.Sweep(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = rep
			if rep.OpenAddrs().Len() == 0 {
				t.Fatal("sweep found no servers")
			}
			continue
		}
		rep.ID = ref.ID // IDs are per-scheduler; everything else must match
		if !reflect.DeepEqual(ref, rep) {
			t.Fatalf("workers=%d: report differs from single-worker reference", workers)
		}
	}
}

// TestSchedulerCompactMatchesFull checks compact-mode summaries aggregate
// exactly what full mode records.
func TestSchedulerCompactMatchesFull(t *testing.T) {
	network, err := campus.NewNetwork(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	backend := &SimBackend{Net: network}
	fixed := network.Config().Start
	targets := network.Plan().ProbeTargets()[:200]
	sweep := func(compact bool) *ScanReport {
		s := NewScheduler(backend, SchedulerConfig{
			Targets:  targets,
			TCPPorts: campus.SelectedTCPPorts,
			Workers:  4,
			Compact:  compact,
		})
		s.clock = func() time.Time { return fixed }
		rep, err := s.Sweep(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	full, compact := sweep(false), sweep(true)
	if len(compact.TCP) != 0 {
		t.Fatal("compact report kept per-probe results")
	}
	if len(compact.Summaries) != len(targets) {
		t.Fatalf("%d summaries, want %d", len(compact.Summaries), len(targets))
	}
	byAddr := make(map[netaddr.V4]*AddrSummary, len(targets))
	for i := range compact.Summaries {
		byAddr[compact.Summaries[i].Addr] = &compact.Summaries[i]
	}
	for _, res := range full.TCP {
		sum := byAddr[res.Addr]
		if sum == nil {
			t.Fatalf("no summary for %v", res.Addr)
		}
		switch res.State {
		case StateOpen:
			found := false
			for _, p := range sum.Open {
				found = found || p == res.Port
			}
			if !found {
				t.Fatalf("summary for %v missing open port %d", res.Addr, res.Port)
			}
		}
	}
	if full.OpenAddrs().Len() != compact.OpenAddrs().Len() {
		t.Fatalf("open addrs: full %d, compact %d",
			full.OpenAddrs().Len(), compact.OpenAddrs().Len())
	}
}

// TestSchedulerSimRealParity runs the same scheduler configuration against
// the real-network backend (on loopback listeners) and a simulated backend
// configured with the same ground truth, and requires the classifications
// to agree — the contract that lets experiments move between the sim and
// real deployments.
func TestSchedulerSimRealParity(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skip("cannot listen on loopback:", err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			c.Close()
		}
	}()
	_, portStr, _ := net.SplitHostPort(ln.Addr().String())
	open64, _ := strconv.ParseUint(portStr, 10, 16)
	openPort := uint16(open64)
	// Allocate-then-release a second port: (very likely) closed.
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skip(err)
	}
	_, p2Str, _ := net.SplitHostPort(ln2.Addr().String())
	closed64, _ := strconv.ParseUint(p2Str, 10, 16)
	closedPort := uint16(closed64)
	ln2.Close()

	lo := netaddr.MustParseV4("127.0.0.1")
	cfg := SchedulerConfig{
		Targets:  []netaddr.V4{lo},
		TCPPorts: []uint16{openPort, closedPort},
		Rate:     100,
		Workers:  4,
	}
	simulated := &stubBackend{tcp: map[netaddr.V4]map[uint16]TCPState{
		lo: {openPort: StateOpen, closedPort: StateClosed},
	}}

	realRep, err := NewScheduler(&NetBackend{Timeout: 2 * time.Second}, cfg).Sweep(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	simRep, err := NewScheduler(simulated, cfg).Sweep(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(realRep.TCP) != len(simRep.TCP) {
		t.Fatalf("result counts differ: real %d, sim %d", len(realRep.TCP), len(simRep.TCP))
	}
	for i := range realRep.TCP {
		r, s := realRep.TCP[i], simRep.TCP[i]
		if r.Addr != s.Addr || r.Port != s.Port || r.State != s.State {
			t.Errorf("result %d: real %v:%d=%v, sim %v:%d=%v",
				i, r.Addr, r.Port, r.State, s.Addr, s.Port, s.State)
		}
	}
}

// BenchmarkScanSweep compares the sequential sweep against the concurrent
// worker pool on a CPU-bound backend (rate limiting off): the concurrent
// scheduler must win on a multi-core runner.
func BenchmarkScanSweep(b *testing.B) {
	cfg := SchedulerConfig{
		Targets:  addrs(256),
		TCPPorts: []uint16{21, 22, 80, 443},
	}
	run := func(b *testing.B, workers int) {
		backend := &stubBackend{work: 400}
		c := cfg
		c.Workers = workers
		s := NewScheduler(backend, c)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.Sweep(context.Background()); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		probes := float64(backend.probes.Load())
		b.ReportMetric(probes/b.Elapsed().Seconds(), "probes/s")
	}
	b.Run("sequential", func(b *testing.B) { run(b, 1) })
	b.Run(fmt_workers(), func(b *testing.B) { run(b, runtime.NumCPU()) })
}

func fmt_workers() string {
	return "concurrent-" + strconv.Itoa(runtime.NumCPU())
}

// TestSchedulerOnSweep pins the sweep observer: it fires once per sweep,
// in launch order, before Run hands the report to its sink, and carries
// the truncation cause for sweeps cut short.
func TestSchedulerOnSweep(t *testing.T) {
	var mu sync.Mutex
	var observed []int
	var errs []error
	sinkSeen := 0
	s := NewScheduler(&stubBackend{}, SchedulerConfig{
		Targets:  addrs(4),
		TCPPorts: []uint16{80},
		Workers:  2,
		OnSweep: func(rep *ScanReport, err error) {
			mu.Lock()
			defer mu.Unlock()
			if sinkSeen != len(observed) {
				t.Error("sink ran before the observer")
			}
			observed = append(observed, rep.ID)
			errs = append(errs, err)
		},
	})
	err := s.Run(context.Background(), 0, 3, ReportFunc(func(rep *ScanReport) {
		mu.Lock()
		sinkSeen++
		mu.Unlock()
	}))
	if err != nil {
		t.Fatal(err)
	}
	if len(observed) != 3 || sinkSeen != 3 {
		t.Fatalf("observer saw %d sweeps, sink %d, want 3/3", len(observed), sinkSeen)
	}
	for i, id := range observed {
		if id != i {
			t.Errorf("sweep %d observed out of order as %d", i, id)
		}
		if errs[i] != nil {
			t.Errorf("full sweep %d reported cause %v", i, errs[i])
		}
	}

	// A cancelled sweep still reaches the observer, with the cause.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var cancelled []error
	s2 := NewScheduler(&stubBackend{}, SchedulerConfig{
		Targets:  addrs(4),
		TCPPorts: []uint16{80},
		OnSweep: func(rep *ScanReport, err error) {
			if !rep.Truncated {
				t.Error("cancelled sweep not marked truncated")
			}
			cancelled = append(cancelled, err)
		},
	})
	if _, err := s2.Sweep(ctx); err == nil {
		t.Fatal("cancelled sweep returned no error")
	}
	if len(cancelled) != 1 || cancelled[0] == nil {
		t.Fatalf("observer on cancelled sweep: %v", cancelled)
	}
}
