package experiments

import (
	"fmt"
	"time"

	"servdisc/internal/campus"
	"servdisc/internal/capture"
	"servdisc/internal/core"
	"servdisc/internal/netaddr"
	"servdisc/internal/packet"
	"servdisc/internal/report"
	"servdisc/internal/stats"
	"servdisc/internal/webcat"
)

// Table1 reproduces the dataset inventory.
func Table1() *report.Table {
	t := report.NewTable("Table 1: datasets",
		"name", "start", "passive", "active scans", "services", "addresses")
	t.AddRow("DTCP1-12h", "2006-09-19", "12 hours", "once", "TCP/selected", 16130)
	t.AddRow("DTCP1-18d", "2006-09-19", "18 days", "every 12 hrs (35)", "TCP/selected", 16130)
	t.AddRow("DTCP1-90d", "2006-08-10", "90 days", "bracketing pair", "TCP/selected", 16130)
	t.AddRow("DTCP1-18d-trans", "2006-09-19", "18 days", "every 12 hrs", "TCP/selected", 2304)
	t.AddRow("DTCPbreak", "2006-12-16", "11 days", "every 12 hrs (22)", "TCP/selected", 16130)
	t.AddRow("DTCPall", "2006-08-26", "10 days", "once (all ports)", "TCP/all", 256)
	t.AddRow("DUDP", "2006-10-18", "1 day", "once (generic UDP)", "UDP/selected", 16130)
	return t
}

// Table2 reproduces the completeness matrix at 3%/6%/50%/100% of the
// dataset (12h/25h/205h/410h of passive observation; 1/2/17/35 sweeps).
func Table2(ds *Dataset) *report.Table {
	an := ds.Analysis()
	t := report.NewTable("Table 2: completeness of active and passive methods (DTCP1-18d)",
		"quantity", "3% (12h/1)", "6% (25h/2)", "50% (205h/17)", "100% (410h/35)")
	cuts := []struct {
		hours float64
		scans int
	}{{12, 1}, {25, 2}, {205, 17}, {410, 35}}
	rows := make([]core.CompletenessRow, len(cuts))
	for i, c := range cuts {
		rows[i] = an.Completeness(ds.Start.Add(time.Duration(c.hours*float64(time.Hour))), c.scans)
	}
	cell := func(v func(core.CompletenessRow) int) []any {
		out := make([]any, len(rows))
		for i, r := range rows {
			out[i] = fmt.Sprintf("%d (%s)", v(r), stats.Percent(v(r), r.Union))
		}
		return out
	}
	t.AddRow(append([]any{"Total servers found (union)"}, cell(func(r core.CompletenessRow) int { return r.Union })...)...)
	t.AddRow(append([]any{"Passive AND Active"}, cell(func(r core.CompletenessRow) int { return r.Both })...)...)
	t.AddRow(append([]any{"Active only"}, cell(func(r core.CompletenessRow) int { return r.ActiveOnly })...)...)
	t.AddRow(append([]any{"Passive only"}, cell(func(r core.CompletenessRow) int { return r.PassiveOnly })...)...)
	t.AddRow(append([]any{"Active"}, cell(func(r core.CompletenessRow) int { return r.Active })...)...)
	t.AddRow(append([]any{"Passive"}, cell(func(r core.CompletenessRow) int { return r.Passive })...)...)
	return t
}

// Table3 reproduces the 12-hour categorization of all probed addresses.
func Table3(ds *Dataset) *report.Table {
	an := ds.Analysis()
	tab := an.Categorize12h(ds.Start.Add(12*time.Hour), ds.Net.Plan().ProbeTargets())
	t := report.NewTable("Table 3: categorization of addresses in DTCP1-12h",
		"passive", "active", "categorization", "count")
	t.AddRow("yes", "yes", "active server address", tab.ActiveServer)
	t.AddRow("no", "yes", "idle server address", tab.IdleServer)
	t.AddRow("yes", "no", "firewalled address or birth", tab.FirewallOrBirth)
	t.AddRow("no", "no", "non-server address", tab.NonServer)
	return t
}

// Table4 reproduces the longitudinal categorization.
func Table4(ds *Dataset) *report.Table {
	an := ds.Analysis()
	rows := an.CategorizeLongitudinal(ds.Start.Add(12*time.Hour),
		ds.Net.Plan().ProbeTargets(), ds.IsTransient)
	t := report.NewTable("Table 4: traits and categorization of addresses (DTCP1-18d)",
		"p-12h", "a-12h", "p-rest", "a-rest", "transient", "categorization", "count")
	yn := func(b bool) string {
		if b {
			return "yes"
		}
		return "no"
	}
	for _, r := range rows {
		t.AddRow(yn(r.Trait.Passive12h), yn(r.Trait.Active12h),
			yn(r.Trait.PassiveRest), yn(r.Trait.ActiveRest),
			yn(r.Trait.Transient), r.Trait.Label(), r.Count)
	}
	return t
}

// Table5 reproduces the web-content categorization cross-tabulated with
// discovery method.
func Table5(ds *Dataset) *report.Table {
	an := ds.Analysis()
	passive := an.PassiveAddrs()
	active := an.ActiveAddrs()

	type tally struct{ union, both, activeOnly, passiveOnly int }
	byCat := map[webcat.Category]*tally{}
	for addr, cat := range ds.WebContent {
		tl := byCat[cat]
		if tl == nil {
			tl = &tally{}
			byCat[cat] = tl
		}
		_, p := passive[addr]
		_, a := active[addr]
		tl.union++
		switch {
		case p && a:
			tl.both++
		case a:
			tl.activeOnly++
		case p:
			tl.passiveOnly++
		}
	}
	t := report.NewTable("Table 5: content served by detected web servers (DTCP1-18d)",
		"page type", "total", "both", "active only", "passive only")
	order := []webcat.Category{
		webcat.Custom, webcat.Default, webcat.Minimal,
		webcat.Config, webcat.Database, webcat.Restricted, webcat.NoResponse,
	}
	for _, cat := range order {
		tl := byCat[cat]
		if tl == nil {
			tl = &tally{}
		}
		t.AddRow(cat.String(), tl.union, tl.both, tl.activeOnly, tl.passiveOnly)
	}
	return t
}

// Table6 reproduces per-service discovery for Web, FTP, SSH and MySQL.
func Table6(ds *Dataset) *report.Table {
	t := report.NewTable("Table 6: server discovery by service type (DTCP1-18d)",
		"service", "union", "both", "active only", "passive only", "active", "passive")
	for _, port := range []uint16{campus.PortHTTP, campus.PortFTP, campus.PortSSH, campus.PortMySQL} {
		an := ds.AnalysisFor(port)
		row := an.Completeness(ds.End, 0)
		t.AddRow(campus.ServiceName(port),
			row.Union, row.Both, row.ActiveOnly, row.PassiveOnly,
			fmt.Sprintf("%d (%s)", row.Active, stats.Percent(row.Active, row.Union)),
			fmt.Sprintf("%d (%s)", row.Passive, stats.Percent(row.Passive, row.Union)))
	}
	return t
}

// Table7 reproduces the UDP service discovery summary.
func Table7(ds *Dataset) *report.Table {
	an := ds.AllPortsAnalysis()
	table := an.UDPSummary(campus.SelectedUDPPorts, ds.Net.Plan().ProbeTargets())
	t := report.NewTable("Table 7: UDP services discovered (DUDP)",
		"quantity", "All", "Web(80)", "DNS(53)", "NetBIOS(137)", "Gaming(27015)")
	perPort := func(v func(core.UDPPortSummary) int) []any {
		out := []any{}
		total := 0
		for _, ps := range table.Ports {
			total += v(ps)
		}
		_ = total
		for _, ps := range table.Ports {
			out = append(out, v(ps))
		}
		return out
	}
	pass := []any{table.PassiveTotal}
	pass = append(pass, perPort(func(p core.UDPPortSummary) int { return p.Passive })...)
	t.AddRow(append([]any{"Passive"}, pass...)...)
	open := []any{table.ActiveDefinitelyOpenTotal}
	open = append(open, perPort(func(p core.UDPPortSummary) int { return p.DefinitelyOpen })...)
	t.AddRow(append([]any{"definitely open (UDP response)"}, open...)...)
	poss := []any{"-"}
	poss = append(poss, perPort(func(p core.UDPPortSummary) int { return p.PossiblyOpen })...)
	t.AddRow(append([]any{"possibly open"}, poss...)...)
	t.AddRow("no response from any probed port", table.NoResponseAnyPort, "-", "-", "-", "-")
	closed := []any{"-"}
	closed = append(closed, perPort(func(p core.UDPPortSummary) int { return p.DefinitelyClosed })...)
	t.AddRow(append([]any{"definitely closed (ICMP response)"}, closed...)...)
	return t
}

// Table8 reproduces the per-peering-link breakdown for a dataset whose
// monitor covered the given links.
func Table8(ds *Dataset, caption string) *report.Table {
	selected := make(map[uint16]bool)
	for _, p := range campus.SelectedTCPPorts {
		selected[p] = true
	}
	keep := func(k core.ServiceKey) bool {
		return k.Proto == packet.ProtoTCP && selected[k.Port]
	}

	// Per-link server sets.
	links := []capture.LinkID{}
	perLink := map[capture.LinkID]*netaddr.Set{}
	all := netaddr.NewSet()
	for link, pd := range ds.PerLink {
		set := netaddr.NewSet()
		for addr := range pd.AddrFirstSeen(keep) {
			set.Add(addr)
			all.Add(addr)
		}
		perLink[link] = set
		links = append(links, link)
	}
	// Deterministic ordering.
	for i := 1; i < len(links); i++ {
		for j := i; j > 0 && links[j] < links[j-1]; j-- {
			links[j], links[j-1] = links[j-1], links[j]
		}
	}

	t := report.NewTable(caption, "link", "servers found", "exclusive")
	for _, link := range links {
		set := perLink[link]
		exclusive := 0
		for _, addr := range set.Sorted() {
			solo := true
			for other, os := range perLink {
				if other != link && os.Contains(addr) {
					solo = false
					break
				}
			}
			if solo {
				exclusive++
			}
		}
		t.AddRow(link.String(),
			fmt.Sprintf("%d (%s)", set.Len(), stats.Percent(set.Len(), all.Len())),
			fmt.Sprintf("%d (%s)", exclusive, stats.Percent(exclusive, all.Len())))
	}
	t.AddRow("all", all.Len(), "-")
	return t
}
