package experiments

import (
	"fmt"
	"time"

	"servdisc/internal/campus"
	"servdisc/internal/core"
	"servdisc/internal/netaddr"
	"servdisc/internal/report"
	"servdisc/internal/stats"
)

// Figure1 reproduces the 12-hour weighted/unweighted cumulative discovery
// curves: passive finds 99% of flow-weighted servers within minutes while
// active probing needs over an hour.
func Figure1(ds *Dataset) *report.Figure {
	an := ds.Analysis()
	cut := ds.Start.Add(12 * time.Hour)

	passiveFirst := map[netaddr.V4]time.Time{}
	for addr, t := range an.PassiveAddrs() {
		if !t.After(cut) {
			passiveFirst[addr] = t
		}
	}
	activeFirst := map[netaddr.V4]time.Time{}
	if scans := ds.Active.Scans(); len(scans) > 0 {
		for addr, t := range an.ActiveAddrs() {
			if !t.After(scans[0].Finished) {
				activeFirst[addr] = t
			}
		}
	}

	mk := func(name string, first map[netaddr.V4]time.Time, kind core.WeightKind) *stats.Series {
		s := an.WeightedSeries(first, kind, ds.Start, cut)
		s.Name = name
		return s
	}
	return report.NewFigure(
		"Figure 1: weighted and unweighted cumulative server discovery over 12 hours",
		10*time.Minute,
		mk("passive-unweighted", passiveFirst, core.WeightNone),
		mk("passive-flow", passiveFirst, core.WeightFlows),
		mk("passive-client", passiveFirst, core.WeightClients),
		mk("active-unweighted", activeFirst, core.WeightNone),
		mk("active-flow", activeFirst, core.WeightFlows),
		mk("active-client", activeFirst, core.WeightClients),
	)
}

// Figure2 reproduces 18-day cumulative discovery over all and static-only
// addresses.
func Figure2(ds *Dataset) *report.Figure {
	an := ds.Analysis()
	static := func(a netaddr.V4) bool { return !ds.IsTransient(a) }
	p := an.PassiveSeries(ds.Start, ds.End, nil)
	p.Name = "passive (all hosts)"
	a := an.ActiveSeries(ds.Start, ds.End, nil)
	a.Name = "active (all hosts)"
	ps := an.PassiveSeries(ds.Start, ds.End, static)
	ps.Name = "passive (static only)"
	as := an.ActiveSeries(ds.Start, ds.End, static)
	as.Name = "active (static only)"
	return report.NewFigure(
		"Figure 2: cumulative server discovery over 18 days, all and non-transient addresses",
		6*time.Hour, p, a, ps, as)
}

// Figure3 compares 90-day and 18-day passive discovery.
func Figure3(ds90, ds18 *Dataset) *report.Figure {
	static90 := func(a netaddr.V4) bool { return !ds90.IsTransient(a) }
	an90 := ds90.Analysis()
	an18 := ds18.Analysis()
	s90 := an90.PassiveSeries(ds90.Start, ds90.End, nil)
	s90.Name = "TCP1-90d (all hosts)"
	s90s := an90.PassiveSeries(ds90.Start, ds90.End, static90)
	s90s.Name = "TCP1-90d (static only)"
	s18 := an18.PassiveSeries(ds18.Start, ds18.End, nil)
	s18.Name = "TCP1-18d (all hosts)"
	return report.NewFigure(
		"Figure 3: cumulative passive discovery over 90 vs 18 days",
		12*time.Hour, s90, s90s, s18)
}

// Figure4 reproduces passive discovery with and without external scans.
func Figure4(ds *Dataset) *report.Figure {
	an := ds.Analysis()
	with := an.PassiveSeries(ds.Start, ds.End, nil)
	with.Name = "with external scans"
	without := an.PassiveSeriesExcludingScanners(ds.Start, ds.End, nil)
	without.Name = "external scans mitigated"
	return report.NewFigure(
		"Figure 4: cumulative passive discovery with and without external scans",
		6*time.Hour, with, without)
}

// Figure5 reproduces per-address-class discovery (DHCP/PPP/VPN), each as
// percent of that class's union.
func Figure5(ds *Dataset) *report.Figure {
	an := ds.Analysis()
	var series []*stats.Series
	for _, class := range []campus.AddressClass{campus.ClassDHCP, campus.ClassPPP, campus.ClassVPN} {
		inClass := func(a netaddr.V4) bool { return ds.ClassOf(a) == class }
		p := an.PassiveSeries(ds.Start, ds.End, inClass)
		a := an.ActiveSeries(ds.Start, ds.End, inClass)
		union := unionSize(an, inClass)
		if union == 0 {
			union = 1
		}
		p = p.Scale(100 / float64(union))
		a = a.Scale(100 / float64(union))
		p.Name = fmt.Sprintf("passive %s", class)
		a.Name = fmt.Sprintf("active %s", class)
		series = append(series, p, a)
	}
	return report.NewFigure(
		"Figure 5: server discovery grouped by transience of address block (percent of class union)",
		6*time.Hour, series...)
}

func unionSize(an *core.Analysis, ok func(netaddr.V4) bool) int {
	u := netaddr.NewSet()
	for a := range an.PassiveAddrs() {
		if ok == nil || ok(a) {
			u.Add(a)
		}
	}
	for a := range an.ActiveAddrs() {
		if ok == nil || ok(a) {
			u.Add(a)
		}
	}
	return u.Len()
}

// Figure6 reproduces per-protocol discovery curves (percent of each
// service's union).
func Figure6(ds *Dataset) *report.Figure {
	var series []*stats.Series
	for _, port := range []uint16{campus.PortHTTP, campus.PortFTP, campus.PortSSH, campus.PortMySQL} {
		an := ds.AnalysisFor(port)
		union := unionSize(an, nil)
		if union == 0 {
			union = 1
		}
		p := an.PassiveSeries(ds.Start, ds.End, nil).Scale(100 / float64(union))
		a := an.ActiveSeries(ds.Start, ds.End, nil).Scale(100 / float64(union))
		p.Name = "passive " + campus.ServiceName(port)
		a.Name = "active " + campus.ServiceName(port)
		series = append(series, p, a)
	}
	return report.NewFigure(
		"Figure 6: server discovery over time by protocol (percent of service union)",
		6*time.Hour, series...)
}

// Figure7 reproduces the time-of-day probing study: day-only, night-only,
// alternating, and full every-12h probing, as percent of the dataset's
// total (union) servers.
func Figure7(ds *Dataset) *report.Figure {
	an := ds.Analysis()
	union := unionSize(an, nil)
	if union == 0 {
		union = 1
	}
	scans := ds.Active.Scans()

	subset := func(name string, pick func(i int, m core.ScanMeta) bool) *stats.Series {
		ids := map[int]bool{}
		for i, m := range scans {
			if pick(i, m) {
				ids[m.ID] = true
			}
		}
		first := ds.Active.AddrFirstOpenForScans(ids, an.Keep)
		s := stats.NewSeries(name)
		s.Add(ds.Start, 0)
		// Build the cumulative curve.
		times := make([]time.Time, 0, len(first))
		for _, t := range first {
			times = append(times, t)
		}
		sortTimes(times)
		for i, t := range times {
			s.Add(t, 100*float64(i+1)/float64(union))
		}
		return s
	}
	day := func(m core.ScanMeta) bool { h := m.Started.Hour(); return h >= 8 && h < 20 }
	return report.NewFigure(
		"Figure 7: network scanning at different times of day (percent of union found)",
		12*time.Hour,
		subset("every 12 hours", func(int, core.ScanMeta) bool { return true }),
		subset("every 24h day", func(_ int, m core.ScanMeta) bool { return day(m) }),
		subset("every 24h night", func(_ int, m core.ScanMeta) bool { return !day(m) }),
		subset("alternating day/night", func(i int, _ core.ScanMeta) bool { return i%4 == 0 || i%4 == 3 }),
	)
}

func sortTimes(ts []time.Time) {
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && ts[j].Before(ts[j-1]); j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
}

// Figure8 reproduces fixed-duration sampling: discovery under 2/5/10/30
// minute-per-hour captures as percent of what continuous monitoring found.
func Figure8(ds *Dataset) *report.Figure {
	an := ds.Analysis()
	full := an.PassiveAddrs()
	total := len(full)
	if total == 0 {
		total = 1
	}
	var series []*stats.Series
	windows := make([]time.Duration, 0, len(ds.Sampled))
	for w := range ds.Sampled {
		windows = append(windows, w)
	}
	for i := 1; i < len(windows); i++ {
		for j := i; j > 0 && windows[j] < windows[j-1]; j-- {
			windows[j], windows[j-1] = windows[j-1], windows[j]
		}
	}
	for _, w := range windows {
		pd := ds.Sampled[w]
		san := &core.Analysis{Passive: pd, Active: ds.Active, Keep: an.Keep}
		s := san.PassiveSeries(ds.Start, ds.End, nil).Scale(100 / float64(total))
		s.Name = fmt.Sprintf("%d min", int(w.Minutes()))
		series = append(series, s)
	}
	fullSeries := an.PassiveSeries(ds.Start, ds.End, nil).Scale(100 / float64(total))
	fullSeries.Name = "no sampling"
	series = append(series, fullSeries)
	return report.NewFigure(
		"Figure 8: cumulative discovery under fixed-period sampling (percent of continuous)",
		6*time.Hour, series...)
}

// Figure9 reproduces the 24-hour weighted/unweighted discovery on the
// all-ports lab dataset.
func Figure9(lab *Dataset) *report.Figure {
	an := lab.AllPortsAnalysis()
	cut := lab.Start.Add(24 * time.Hour)
	passiveFirst := map[netaddr.V4]time.Time{}
	for addr, t := range an.PassiveAddrs() {
		if !t.After(cut) {
			passiveFirst[addr] = t
		}
	}
	activeFirst := map[netaddr.V4]time.Time{}
	for addr, t := range an.ActiveAddrs() {
		if !t.After(cut) {
			activeFirst[addr] = t
		}
	}
	mk := func(name string, first map[netaddr.V4]time.Time, kind core.WeightKind) *stats.Series {
		s := an.WeightedSeries(first, kind, lab.Start, cut)
		s.Name = name
		return s
	}
	return report.NewFigure(
		"Figure 9: weighted and unweighted cumulative discovery over 24 hours, all ports (DTCPall)",
		time.Hour,
		mk("passive-unweighted", passiveFirst, core.WeightNone),
		mk("passive-flow", passiveFirst, core.WeightFlows),
		mk("passive-client", passiveFirst, core.WeightClients),
		mk("active-unweighted", activeFirst, core.WeightNone),
		mk("active-flow", activeFirst, core.WeightFlows),
		mk("active-client", activeFirst, core.WeightClients),
	)
}

// Figure10 reproduces ten-day cumulative discovery over all known ports.
func Figure10(lab *Dataset) *report.Figure {
	an := lab.AllPortsAnalysis()
	p := an.PassiveSeries(lab.Start, lab.End, nil)
	p.Name = "passive"
	a := an.ActiveSeries(lab.Start, lab.End, nil)
	a.Name = "active"
	return report.NewFigure(
		"Figure 10: cumulative server discovery over 10 days, all ports (DTCPall)",
		6*time.Hour, p, a)
}

// Figure11 renders the host × open-port scatter as a table (the paper's
// scatter plot); the CSV form is the plottable artifact.
func Figure11(lab *Dataset) *report.Table {
	m := Fig11Matrix(lab)
	t := report.NewTable("Figure 11: open ports per host (DTCPall)",
		"host", "active ports", "passive ports")
	base := lab.Net.Plan().Base()
	for _, row := range m.Rows {
		t.AddRow(int(row.Addr-base), fmt.Sprint(row.Active), fmt.Sprint(row.Passive))
	}
	return t
}

// Figure12 reproduces winter-break discovery, all vs non-transient.
func Figure12(brk *Dataset) *report.Figure {
	an := brk.Analysis()
	static := func(a netaddr.V4) bool { return !brk.IsTransient(a) }
	p := an.PassiveSeries(brk.Start, brk.End, nil)
	p.Name = "passive (all)"
	a := an.ActiveSeries(brk.Start, brk.End, nil)
	a.Name = "active (all)"
	ps := an.PassiveSeries(brk.Start, brk.End, static)
	ps.Name = "passive (static)"
	as := an.ActiveSeries(brk.Start, brk.End, static)
	as.Name = "active (static)"
	return report.NewFigure(
		"Figure 12: cumulative server discovery over 11 days during winter break",
		6*time.Hour, p, a, ps, as)
}
