// Package experiments assembles complete simulated datasets matching the
// paper's Table 1 and provides one runner per table and figure of the
// evaluation (see DESIGN.md §3 for the index). Each runner returns a
// renderable report; cmd/repro drives them and bench_test.go at the module
// root wraps each in a benchmark.
package experiments

import (
	"fmt"
	"time"

	"servdisc/internal/campus"
	"servdisc/internal/capture"
	"servdisc/internal/core"
	"servdisc/internal/netaddr"
	"servdisc/internal/packet"
	"servdisc/internal/probe"
	"servdisc/internal/sim"
	"servdisc/internal/traffic"
	"servdisc/internal/webcat"
)

// Dataset is one fully simulated observation campaign: the campus, its
// traffic, a passive monitor (merged, per-link and sampled variants), and
// a periodic active scan.
type Dataset struct {
	Cfg campus.Config
	Net *campus.Network
	Eng *sim.Engine

	Monitor *capture.Monitor
	Merged  *core.PassiveDiscoverer
	PerLink map[capture.LinkID]*core.PassiveDiscoverer
	Sampled map[time.Duration]*core.PassiveDiscoverer

	Active *core.ActiveDiscoverer

	// WebContent maps discovered web servers to the category of the root
	// page fetched within a day of discovery (Table 5).
	WebContent map[netaddr.V4]webcat.Category

	Start, End time.Time
}

// BuildOptions shape a dataset.
type BuildOptions struct {
	Cfg  campus.Config
	Days float64
	// ScanStartOffset delays the first sweep (default 1h: the paper's
	// 11:00 scans against a 10:00 collection start).
	ScanStartOffset time.Duration
	// ScanEvery is the sweep interval (0 disables active scanning).
	ScanEvery time.Duration
	// ScanCount bounds the number of sweeps (0 = for the whole window).
	ScanCount int
	// ScanRate is probes/second per scanning machine; Shards the machine
	// count (the paper: two internal machines, 90–120 minute sweeps).
	ScanRate float64
	Shards   int
	// Links lists monitored peerings (default: the two commercial links).
	Links []capture.LinkID
	// SampleWindows adds fixed-window sampled captures (Figure 8).
	SampleWindows []time.Duration
	// FetchWeb enables root-page fetching of discovered web servers.
	FetchWeb bool
	// UDPPorts switches sweeps to generic UDP probing of these ports.
	UDPPorts []uint16
	// TCPPorts overrides the probed TCP port set (default: the paper's
	// five selected services; empty slice with UDPPorts set = UDP-only).
	TCPPorts []uint16
}

// Build constructs the dataset and runs the simulation to completion.
func Build(o BuildOptions) (*Dataset, error) {
	net, err := campus.NewNetwork(o.Cfg)
	if err != nil {
		return nil, err
	}
	return buildOn(net, o)
}

// buildOn assembles a dataset over an already-constructed (possibly
// custom-populated) network and runs it.
func buildOn(net *campus.Network, o BuildOptions) (*Dataset, error) {
	eng := sim.New(o.Cfg.Start)
	campus.NewDynamics(net, eng)

	d := &Dataset{
		Cfg:        o.Cfg,
		Net:        net,
		Eng:        eng,
		PerLink:    make(map[capture.LinkID]*core.PassiveDiscoverer),
		Sampled:    make(map[time.Duration]*core.PassiveDiscoverer),
		WebContent: make(map[netaddr.V4]webcat.Category),
		Start:      o.Cfg.Start,
		End:        o.Cfg.Start.Add(time.Duration(o.Days * 24 * float64(time.Hour))),
	}

	campusPfx, err := netaddr.NewPrefix(net.Plan().Base(), 16)
	if err != nil {
		return nil, err
	}
	assigner := capture.NewAssigner(campusPfx, net.AcademicClients())

	links := o.Links
	if len(links) == 0 {
		links = []capture.LinkID{capture.LinkCommercial1, capture.LinkCommercial2}
	}
	d.Merged = core.NewPassiveDiscoverer(campusPfx, campus.SelectedUDPPorts)
	taps := make([]*capture.Tap, 0, len(links))
	for _, link := range links {
		pl := core.NewPassiveDiscoverer(campusPfx, campus.SelectedUDPPorts)
		d.PerLink[link] = pl
		tap, err := capture.NewTap(link, capture.PaperFilter, nil, capture.Tee{d.Merged, pl})
		if err != nil {
			return nil, err
		}
		taps = append(taps, tap)
	}
	d.Monitor = capture.NewMonitor(assigner, taps...)

	// Sampled pipelines mirror the monitored links through their own
	// filter+sampler chains.
	for _, w := range o.SampleWindows {
		pd := core.NewPassiveDiscoverer(campusPfx, campus.SelectedUDPPorts)
		d.Sampled[w] = pd
		tap, err := capture.NewTap(capture.LinkCommercial1, capture.PaperFilter,
			capture.NewFixedWindowSampler(o.Cfg.Start, w), pd)
		if err != nil {
			return nil, err
		}
		d.Monitor.AddMirror(tap)
	}

	traffic.NewGenerator(net, eng, d.Monitor)

	tcpPorts := o.TCPPorts
	if tcpPorts == nil && len(o.UDPPorts) == 0 {
		tcpPorts = campus.SelectedTCPPorts
	}
	d.Active = core.NewActiveDiscoverer(tcpPorts)
	if o.ScanEvery > 0 {
		rate := o.ScanRate
		if rate <= 0 {
			rate = 7 // two shards ≈ 14 probes/s → ~96-minute sweeps
		}
		shards := o.Shards
		if shards <= 0 {
			shards = 2
		}
		scanner := probe.NewSimScanner(&probe.SimBackend{Net: net}, eng, probe.ScanConfig{
			Targets:  net.Plan().ProbeTargets(),
			TCPPorts: tcpPorts,
			UDPPorts: o.UDPPorts,
			Rate:     rate,
			Shards:   shards,
			Compact:  len(tcpPorts) > 64,
		})
		scanner.ScheduleEvery(o.Cfg.Start.Add(o.ScanStartOffset), o.ScanEvery, o.ScanCount,
			func(rep *probe.ScanReport) { d.Active.AddReport(rep) })
	}

	if o.FetchWeb {
		d.scheduleWebFetches()
	}

	eng.RunUntil(d.End)
	return d, nil
}

// scheduleWebFetches polls for newly discovered web servers hourly and
// fetches each root page one day after discovery, as in the Table 5
// methodology ("each web server is contacted within a day of discovery").
func (d *Dataset) scheduleWebFetches() {
	cat := webcat.DefaultCategorizer()
	scheduled := make(map[netaddr.V4]bool)
	fetch := func(addr netaddr.V4) {
		d.Eng.After(24*time.Hour, func(now time.Time) {
			if _, done := d.WebContent[addr]; done {
				return
			}
			body, ok := d.Net.FetchRoot(now, addr)
			if !ok {
				d.WebContent[addr] = webcat.NoResponse
				return
			}
			d.WebContent[addr] = cat.Categorize(body)
		})
	}
	d.Eng.Every(d.Start.Add(time.Hour), time.Hour, func(now time.Time) {
		consider := func(key core.ServiceKey) {
			if key.Proto != packet.ProtoTCP || (key.Port != campus.PortHTTP && key.Port != campus.PortHTTPS) {
				return
			}
			if !scheduled[key.Addr] {
				scheduled[key.Addr] = true
				fetch(key.Addr)
			}
		}
		for key := range d.Merged.Services() {
			consider(key)
		}
		for key := range d.Active.Services() {
			consider(key)
		}
	})
}

// AllPortsAnalysis returns the unfiltered analysis (every port and
// protocol), the scope of the DTCPall and DUDP studies.
func (d *Dataset) AllPortsAnalysis() *core.Analysis {
	return &core.Analysis{Passive: d.Merged, Active: d.Active}
}

// Analysis returns the joined analysis restricted to the selected TCP
// service ports (the DTCP1* datasets' scope).
func (d *Dataset) Analysis() *core.Analysis {
	selected := make(map[uint16]bool, len(campus.SelectedTCPPorts))
	for _, p := range campus.SelectedTCPPorts {
		selected[p] = true
	}
	return &core.Analysis{
		Passive: d.Merged,
		Active:  d.Active,
		Keep: func(k core.ServiceKey) bool {
			return k.Proto == packet.ProtoTCP && selected[k.Port]
		},
	}
}

// AnalysisFor returns an analysis restricted to a single TCP port.
func (d *Dataset) AnalysisFor(port uint16) *core.Analysis {
	return &core.Analysis{
		Passive: d.Merged,
		Active:  d.Active,
		Keep: func(k core.ServiceKey) bool {
			return k.Proto == packet.ProtoTCP && k.Port == port
		},
	}
}

// ClassOf reports the address class, defaulting to static for off-plan
// addresses (which do not occur in practice).
func (d *Dataset) ClassOf(a netaddr.V4) campus.AddressClass {
	c, _ := d.Net.Plan().ClassOf(a)
	return c
}

// IsTransient reports whether the address belongs to a transient block.
func (d *Dataset) IsTransient(a netaddr.V4) bool {
	return d.ClassOf(a).Transient()
}

// Duration returns the observation window length.
func (d *Dataset) Duration() time.Duration { return d.End.Sub(d.Start) }

// String summarizes the dataset.
func (d *Dataset) String() string {
	return fmt.Sprintf("dataset[%s, %.1f days, %d scans]",
		d.Start.Format("2006-01-02"), d.Duration().Hours()/24, len(d.Active.Scans()))
}

// Semester18d builds the flagship DTCP1-18d dataset: 18 days of passive
// collection with sweeps every 12 hours (35 total).
func Semester18d() (*Dataset, error) {
	return Build(BuildOptions{
		Cfg:             campus.DefaultSemesterConfig(),
		Days:            18,
		ScanStartOffset: time.Hour,
		ScanEvery:       12 * time.Hour,
		ScanCount:       35,
		SampleWindows: []time.Duration{
			2 * time.Minute, 5 * time.Minute, 10 * time.Minute, 30 * time.Minute,
		},
		FetchWeb: true,
	})
}

// Semester90d builds DTCP1-90d: 90 days of passive-only observation, plus a
// final sweep to complete the union ground truth. Client flow volume is
// reduced 4× to keep the simulation tractable; popularity weighting is
// unaffected because discovery depends on rare-service rates, which are
// unchanged.
func Semester90d() (*Dataset, error) {
	cfg := campus.DefaultSemesterConfig()
	cfg.Start = time.Date(2006, 8, 10, 10, 0, 0, 0, time.UTC)
	cfg.FlowsPerDay /= 4
	return Build(BuildOptions{
		Cfg:             cfg,
		Days:            90,
		ScanStartOffset: time.Hour,
		ScanEvery:       89 * 24 * time.Hour, // one sweep at the start, one near the end
		ScanCount:       2,
	})
}

// Break11d builds DTCPbreak: 11 days over winter break with all three
// peerings monitored (including Internet2).
func Break11d() (*Dataset, error) {
	return Build(BuildOptions{
		Cfg:             campus.BreakConfig(),
		Days:            11,
		ScanStartOffset: time.Hour,
		ScanEvery:       12 * time.Hour,
		ScanCount:       22,
		Links: []capture.LinkID{
			capture.LinkCommercial1, capture.LinkCommercial2, capture.LinkInternet2,
		},
	})
}

// UDP1d builds DUDP: 24 hours of passive collection plus one generic UDP
// sweep of the four selected ports.
func UDP1d() (*Dataset, error) {
	cfg := campus.DefaultSemesterConfig()
	cfg.Start = time.Date(2006, 10, 18, 10, 0, 0, 0, time.UTC)
	cfg.Seed = 0xD0D5EED
	return Build(BuildOptions{
		Cfg:             cfg,
		Days:            1,
		ScanStartOffset: time.Hour,
		ScanEvery:       48 * time.Hour, // exactly one sweep in-window
		ScanCount:       1,
		ScanRate:        10,
		TCPPorts:        []uint16{},
		UDPPorts:        campus.SelectedUDPPorts,
	})
}
