package experiments

import (
	"fmt"

	"servdisc/internal/campus"
	"servdisc/internal/core"
	"servdisc/internal/packet"
	"servdisc/internal/report"
	"servdisc/internal/stats"
)

// HybridTable reconciles the campaign's passive and active sides through
// the hybrid inventory (core.NewHybridInventory) and breaks the union down
// by first-seen provenance per selected TCP service port — the engine-level
// restatement of the paper's passive-vs-active comparison tables: passive
// wins the race for popular services, probing contributes the idle ones.
func HybridTable(ds *Dataset) *report.Table {
	inv := core.NewHybridInventory(ds.Merged, ds.Active)
	type row struct{ union, pFirst, aFirst, pOnly, aOnly int }
	perPort := make(map[uint16]*row, len(campus.SelectedTCPPorts))
	for _, port := range campus.SelectedTCPPorts {
		perPort[port] = &row{}
	}
	var total row
	for _, key := range inv.Keys() {
		if key.Proto != packet.ProtoTCP {
			continue
		}
		r, ok := perPort[key.Port]
		if !ok {
			continue
		}
		p, _ := inv.Provenance(key)
		for _, dst := range []*row{r, &total} {
			dst.union++
			switch p {
			case core.PassiveFirst:
				dst.pFirst++
			case core.ActiveFirst:
				dst.aFirst++
			case core.PassiveOnly:
				dst.pOnly++
			case core.ActiveOnly:
				dst.aOnly++
			}
		}
	}

	t := report.NewTable("Hybrid reconciliation: first-seen provenance per service port (DTCP1-18d)",
		"port", "union", "passive-first", "active-first", "passive-only", "active-only")
	addRow := func(label string, r *row) {
		pct := func(n int) string { return fmt.Sprintf("%d (%s)", n, stats.Percent(n, r.union)) }
		t.AddRow(label, r.union, pct(r.pFirst), pct(r.aFirst), pct(r.pOnly), pct(r.aOnly))
	}
	for _, port := range campus.SelectedTCPPorts {
		addRow(fmt.Sprintf("%d", port), perPort[port])
	}
	addRow("all", &total)
	return t
}
