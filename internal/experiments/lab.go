package experiments

import (
	"time"

	"servdisc/internal/campus"
	"servdisc/internal/netaddr"
	"servdisc/internal/packet"
	"servdisc/internal/stats"
)

// Well-known ports of the all-ports lab study (Figure 11's labels).
const (
	labPortDiscard = 9
	labPortDaytime = 13
	labPortFTP     = 21
	labPortSSH     = 22
	labPortSMTP    = 25
	labPortTime    = 37
	labPortHTTP    = 80
	labPortSunRPC  = 111
	labPortEpmap   = 135
	labPortNetBIOS = 139
	labPortXFonts  = 7100
)

// labConfig is the DTCPall population: a single /24 of fixed addresses,
// mostly student lab machines (Section 5.4).
func labConfig() campus.Config {
	c := campus.DefaultSemesterConfig()
	c.Seed = 0x1AB5EED
	c.Start = time.Date(2006, 8, 26, 10, 0, 0, 0, time.UTC)
	c.StaticAddrs = 256
	c.StaticSubnets = 1
	c.DHCPAddrs, c.WirelessAddrs, c.PPPAddrs, c.VPNAddrs = 0, 0, 0, 0
	c.StaticLiveHosts = 0
	c.StaticServers = 0
	c.PopularServers = 0
	c.StealthFirewalled = 0
	c.ServerDeaths = 0
	c.StaticServerBirthsPerDay = 0.4 // the handful of post-scan web births
	c.DHCPHosts, c.PPPHosts, c.VPNHosts, c.WirelessHosts = 0, 0, 0, 0
	c.ClientPool = 4000
	// One host dominates: 97% of subnet connections (Section 5.4).
	c.FlowsPerDay = 5000
	c.PopularFlowShare = 0.97
	// SSH and FTP external scans sweep the subnet during the window.
	c.BigScans = []campus.ScanConfig{
		{StartOffset: 26*time.Hour + 35*time.Minute, Port: labPortSSH, Coverage: 1.0},
		{StartOffset: 3*24*time.Hour + 9*time.Hour, Port: labPortFTP, Coverage: 1.0},
	}
	c.SmallScannersPerDay = 0.8
	c.SmallScanMinAddrs = 64
	c.SmallScanMaxAddrs = 256
	c.UDP = campus.UDPConfig{}
	return c
}

// buildLabPopulation installs the lab machines: unix workstations with
// remote-access services, NT machines with local-only RPC services, a few
// web servers, and the single dominant server.
func buildLabPopulation(net *campus.Network, cfg campus.Config) error {
	rng := stats.NewRNG(cfg.Seed).Derive("lab")
	tcp := func(port uint16, rate float64, localOnly bool) campus.Service {
		return campus.Service{
			Port:       port,
			Proto:      packet.ProtoTCP,
			RatePerDay: rate,
			LocalOnly:  localOnly,
			Clients:    net.RandomClients(1 + rng.Poisson(1)),
		}
	}

	// The dominant server: one busy web host serving 97% of connections.
	_, err := net.AddHost(campus.HostSpec{
		Class:    campus.ClassStatic,
		AlwaysUp: true,
		Services: []campus.Service{{
			Port: labPortHTTP, Proto: packet.ProtoTCP,
			Popular: true, PopularWeight: 1.0,
			Content: campus.ContentCustom,
		}},
	})
	if err != nil {
		return err
	}

	// 140 unix lab machines: ssh+ftp everywhere, sunrpc local-only, a few
	// with X font servers and inetd simple services.
	for i := 0; i < 140; i++ {
		svcs := []campus.Service{
			tcp(labPortSSH, rng.LogUniform(0.005, 0.8), false),
			tcp(labPortFTP, rng.LogUniform(0.002, 0.3), false),
			tcp(labPortSunRPC, 0, true),
		}
		if i%5 == 0 {
			svcs = append(svcs, tcp(labPortXFonts, 0, true))
		}
		if i%7 == 0 {
			svcs = append(svcs,
				tcp(labPortDiscard, 0, true),
				tcp(labPortDaytime, 0, true),
				tcp(labPortTime, 0, true))
		}
		if _, err := net.AddHost(campus.HostSpec{
			Class: campus.ClassStatic, AlwaysUp: true, Services: svcs,
		}); err != nil {
			return err
		}
	}

	// 95 NT machines: epmap + NetBIOS session, strictly local.
	for i := 0; i < 95; i++ {
		if _, err := net.AddHost(campus.HostSpec{
			Class: campus.ClassStatic, AlwaysUp: true, SilentUDP: true,
			Services: []campus.Service{
				tcp(labPortEpmap, 0, true),
				tcp(labPortNetBIOS, 0, true),
			},
		}); err != nil {
			return err
		}
	}

	// A dozen departmental web servers, one running SMTP too, plus a few
	// ephemeral high-port services only passive ever sees.
	for i := 0; i < 12; i++ {
		svcs := []campus.Service{
			tcp(labPortHTTP, rng.LogUniform(0.05, 3), false),
		}
		if i == 0 {
			svcs = append(svcs, tcp(labPortSMTP, 0.5, false))
		}
		if i%4 == 0 {
			svcs = append(svcs, tcp(uint16(30000+rng.Intn(30000)), rng.LogUniform(0.2, 2), false))
		}
		svcs[0].Content = campus.ContentDefault
		if _, err := net.AddHost(campus.HostSpec{
			Class: campus.ClassStatic, AlwaysUp: true, Services: svcs,
		}); err != nil {
			return err
		}
	}
	return nil
}

// allPorts enumerates the full TCP port range the DTCPall sweep probes.
func allPorts() []uint16 {
	out := make([]uint16, 65535)
	for i := range out {
		out[i] = uint16(i + 1)
	}
	return out
}

// Lab10d builds DTCPall: a /24 of lab machines, ten days of passive
// observation, and one all-ports sweep taking nearly 24 hours, as in the
// paper.
func Lab10d() (*Dataset, error) {
	cfg := labConfig()
	net, err := campus.NewNetwork(cfg)
	if err != nil {
		return nil, err
	}
	if err := buildLabPopulation(net, cfg); err != nil {
		return nil, err
	}
	return buildOn(net, BuildOptions{
		Cfg:             cfg,
		Days:            10,
		ScanStartOffset: time.Hour,
		ScanEvery:       20 * 24 * time.Hour, // exactly one sweep
		ScanCount:       1,
		// 256 addrs × 65,535 ports in ~23h ≈ 200 probes/s.
		ScanRate: 100,
		Shards:   2,
		TCPPorts: allPorts(),
	})
}

// HostPortMatrix extracts Figure 11's scatter data: for each lab address,
// the open ports found by each method.
type HostPortMatrix struct {
	// Rows are sorted by address.
	Rows []HostPorts
}

// HostPorts is one address's open-port sets.
type HostPorts struct {
	Addr    netaddr.V4
	Active  []uint16
	Passive []uint16
}

// Fig11Matrix builds the host × port scatter from a lab dataset.
func Fig11Matrix(d *Dataset) HostPortMatrix {
	byAddr := make(map[netaddr.V4]*HostPorts)
	get := func(a netaddr.V4) *HostPorts {
		hp := byAddr[a]
		if hp == nil {
			hp = &HostPorts{Addr: a}
			byAddr[a] = hp
		}
		return hp
	}
	for key := range d.Active.Services() {
		get(key.Addr).Active = append(get(key.Addr).Active, key.Port)
	}
	for key := range d.Merged.Services() {
		if key.Proto == packet.ProtoTCP {
			get(key.Addr).Passive = append(get(key.Addr).Passive, key.Port)
		}
	}
	var m HostPortMatrix
	for _, a := range sortedAddrs(byAddr) {
		hp := byAddr[a]
		sortPorts(hp.Active)
		sortPorts(hp.Passive)
		m.Rows = append(m.Rows, *hp)
	}
	return m
}

func sortedAddrs(m map[netaddr.V4]*HostPorts) []netaddr.V4 {
	out := make([]netaddr.V4, 0, len(m))
	for a := range m {
		out = append(out, a)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func sortPorts(p []uint16) {
	for i := 1; i < len(p); i++ {
		for j := i; j > 0 && p[j] < p[j-1]; j-- {
			p[j], p[j-1] = p[j-1], p[j]
		}
	}
}
