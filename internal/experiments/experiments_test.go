package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"servdisc/internal/campus"
	"servdisc/internal/capture"
	"servdisc/internal/core"
	"servdisc/internal/netaddr"
	"servdisc/internal/report"
	"servdisc/internal/stats"
)

// smallConfig scales the campus down ~8× so an 18-day campaign simulates in
// a couple of seconds; proportions (and therefore every qualitative result)
// are preserved.
func smallConfig() campus.Config {
	c := campus.DefaultSemesterConfig()
	c.StaticAddrs = 1728
	c.DHCPAddrs = 128
	c.WirelessAddrs = 64
	c.PPPAddrs = 64
	c.VPNAddrs = 32
	c.StaticSubnets = 8
	c.StaticLiveHosts = 450
	c.StaticServers = 200
	c.PopularServers = 6
	c.StealthFirewalled = 5
	c.ServerDeaths = 2
	c.StaticServerBirthsPerDay = 2
	c.FlowsPerDay = 8000
	c.ClientPool = 5000
	c.DHCPHosts = 110
	c.PPPHosts = 52
	c.VPNHosts = 24
	c.WirelessHosts = 50
	c.SmallScanMinAddrs = 60
	c.SmallScanMaxAddrs = 300
	c.UDP.DNSServers = 12
	c.UDP.DNSGenericReply = 7
	c.UDP.WindowsHosts = 200
	c.UDP.NetBIOSGenericReply = 6
	c.UDP.NetBIOSLeaks = 2
	return c
}

func smallDataset(t *testing.T, days float64, scanCount int) *Dataset {
	t.Helper()
	ds, err := Build(BuildOptions{
		Cfg:             smallConfig(),
		Days:            days,
		ScanStartOffset: time.Hour,
		ScanEvery:       12 * time.Hour,
		ScanCount:       scanCount,
		ScanRate:        4,
		SampleWindows:   []time.Duration{2 * time.Minute, 30 * time.Minute},
		FetchWeb:        true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

var (
	cachedDS   *Dataset
	cachedDays = 18.0
)

func sharedSmall(t *testing.T) *Dataset {
	t.Helper()
	if cachedDS == nil {
		cachedDS = smallDataset(t, cachedDays, 35)
	}
	return cachedDS
}

func TestDatasetShapeMatchesPaper(t *testing.T) {
	ds := sharedSmall(t)
	an := ds.Analysis()

	// 12-hour column of Table 2: one scan dominates (paper: 98% vs 19%).
	row12 := an.Completeness(ds.Start.Add(12*time.Hour), 1)
	if row12.Union == 0 {
		t.Fatal("empty union")
	}
	activePct := float64(row12.Active) / float64(row12.Union)
	passivePct := float64(row12.Passive) / float64(row12.Union)
	if activePct < 0.9 {
		t.Errorf("active 12h completeness = %.2f, paper ~0.98", activePct)
	}
	if passivePct > 0.45 || passivePct < 0.05 {
		t.Errorf("passive 12h completeness = %.2f, paper ~0.19", passivePct)
	}

	// Full window: passive catches up substantially but stays below
	// active (paper: 71% vs 94%).
	full := an.Completeness(ds.End, 0)
	fullPassive := float64(full.Passive) / float64(full.Union)
	fullActive := float64(full.Active) / float64(full.Union)
	if fullPassive <= passivePct+0.2 {
		t.Errorf("passive never caught up: %.2f -> %.2f", passivePct, fullPassive)
	}
	if fullActive <= fullPassive {
		t.Errorf("active (%.2f) should stay ahead of passive (%.2f)", fullActive, fullPassive)
	}
	if full.PassiveOnly == 0 {
		t.Error("no passive-only servers (paper: 6.3%)")
	}
}

func TestWeightedDiscoveryIsFast(t *testing.T) {
	ds := sharedSmall(t)
	fig := Figure1(ds)
	// The passive flow-weighted series must reach 95% quickly (paper:
	// 99% of flow-weighted servers within 5 minutes).
	var flow, unw *stats.Series
	for _, s := range fig.Series {
		switch s.Name {
		case "passive-flow":
			flow = s
		case "passive-unweighted":
			unw = s
		}
	}
	if flow == nil || unw == nil {
		t.Fatal("series missing")
	}
	at, ok := flow.FirstReaching(95)
	if !ok {
		t.Fatal("flow-weighted never reached 95%")
	}
	if d := at.Sub(ds.Start); d > 2*time.Hour {
		t.Errorf("flow-weighted 95%% took %v, paper: minutes", d)
	}
	// Unweighted lags far behind at that moment.
	if unw.At(at) > 50 {
		t.Errorf("unweighted already at %.0f%% when flow hit 95%%", unw.At(at))
	}
}

func TestExternalScansBoostPassive(t *testing.T) {
	ds := sharedSmall(t)
	an := ds.Analysis()
	with := an.PassiveSeries(ds.Start, ds.End, nil)
	without := an.PassiveSeriesExcludingScanners(ds.Start, ds.End, nil)
	if without.Last() >= with.Last() {
		t.Errorf("scan removal did not reduce discovery: %v vs %v", without.Last(), with.Last())
	}
	drop := (with.Last() - without.Last()) / with.Last()
	if drop < 0.05 {
		t.Errorf("scan removal dropped only %.1f%%, paper: 36%%", 100*drop)
	}
}

func TestVPNAnomaly(t *testing.T) {
	ds := sharedSmall(t)
	an := ds.Analysis()
	inVPN := func(addr netaddr.V4) bool { return ds.ClassOf(addr) == campus.ClassVPN }
	p := an.PassiveSeries(ds.Start, ds.End, inVPN).Last()
	a := an.ActiveSeries(ds.Start, ds.End, inVPN).Last()
	if a < 3*p {
		t.Errorf("VPN active (%v) should dwarf passive (%v), paper ~10x", a, p)
	}
	if a == 0 {
		t.Error("no VPN servers found actively")
	}
}

func TestTablesRender(t *testing.T) {
	ds := sharedSmall(t)
	for name, tab := range map[string]interface{ Render() string }{
		"table1": Table1(),
		"table2": Table2(ds),
		"table3": Table3(ds),
		"table4": Table4(ds),
		"table5": Table5(ds),
		"table6": Table6(ds),
		"table8": Table8(ds, "Table 8 (semester links)"),
	} {
		out := tab.Render()
		if len(out) < 50 || !strings.Contains(out, "\n") {
			t.Errorf("%s render too small:\n%s", name, out)
		}
	}
}

func TestTable3Totals(t *testing.T) {
	ds := sharedSmall(t)
	an := ds.Analysis()
	tab := an.Categorize12h(ds.Start.Add(12*time.Hour), ds.Net.Plan().ProbeTargets())
	if tab.Total() != len(ds.Net.Plan().ProbeTargets()) {
		t.Errorf("Table 3 total %d != probed %d", tab.Total(), len(ds.Net.Plan().ProbeTargets()))
	}
	if tab.IdleServer <= tab.ActiveServer {
		t.Error("idle servers should dominate active ones (paper: 81% vs 16%)")
	}
}

func TestTable4CountsSumToSpace(t *testing.T) {
	ds := sharedSmall(t)
	an := ds.Analysis()
	rows := an.CategorizeLongitudinal(ds.Start.Add(12*time.Hour),
		ds.Net.Plan().ProbeTargets(), ds.IsTransient)
	sum := 0
	for _, r := range rows {
		sum += r.Count
	}
	if sum != len(ds.Net.Plan().ProbeTargets()) {
		t.Errorf("Table 4 sums to %d, want %d", sum, len(ds.Net.Plan().ProbeTargets()))
	}
}

func TestTable5HasContent(t *testing.T) {
	ds := sharedSmall(t)
	if len(ds.WebContent) == 0 {
		t.Fatal("no web pages fetched")
	}
	tab := Table5(ds)
	if len(tab.Rows()) != 7 {
		t.Errorf("Table 5 rows = %d", len(tab.Rows()))
	}
}

func TestFiguresRenderAndCSV(t *testing.T) {
	ds := sharedSmall(t)
	figs := map[string]*report.Figure{
		"fig1": Figure1(ds),
		"fig2": Figure2(ds),
		"fig4": Figure4(ds),
		"fig5": Figure5(ds),
		"fig6": Figure6(ds),
		"fig7": Figure7(ds),
		"fig8": Figure8(ds),
	}
	for name, f := range figs {
		if len(f.Series) == 0 {
			t.Errorf("%s has no series", name)
			continue
		}
		if out := f.Render(); len(out) < 40 {
			t.Errorf("%s render too small", name)
		}
		var buf bytes.Buffer
		if err := f.WriteCSV(&buf); err != nil {
			t.Errorf("%s CSV: %v", name, err)
		}
		if lines := strings.Count(buf.String(), "\n"); lines < 3 {
			t.Errorf("%s CSV only %d lines", name, lines)
		}
	}
}

func TestSamplingOrdering(t *testing.T) {
	ds := sharedSmall(t)
	an := ds.Analysis()
	full := len(an.PassiveAddrs())
	d2 := ds.Sampled[2*time.Minute]
	d30 := ds.Sampled[30*time.Minute]
	if d2 == nil || d30 == nil {
		t.Fatal("sampled discoverers missing")
	}
	an2 := &core.Analysis{Passive: d2, Active: ds.Active, Keep: an.Keep}
	an30 := &core.Analysis{Passive: d30, Active: ds.Active, Keep: an.Keep}
	n2 := len(an2.PassiveAddrs())
	n30 := len(an30.PassiveAddrs())
	if !(n2 <= n30 && n30 <= full) {
		t.Errorf("sampling ordering violated: 2min=%d 30min=%d full=%d", n2, n30, full)
	}
	// 30-minute sampling keeps most of the discovery (paper: ~95%).
	if float64(n30) < 0.7*float64(full) {
		t.Errorf("30min sampling found only %d of %d", n30, full)
	}
}

func TestLabDatasetSmall(t *testing.T) {
	// A reduced lab run: fewer ports to keep the sweep fast.
	cfg := labConfig()
	net, err := campus.NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := buildLabPopulation(net, cfg); err != nil {
		t.Fatal(err)
	}
	ds, err := buildOn(net, BuildOptions{
		Cfg:             cfg,
		Days:            4,
		ScanStartOffset: time.Hour,
		ScanEvery:       10 * 24 * time.Hour,
		ScanCount:       1,
		ScanRate:        600,
		Shards:          2,
		TCPPorts:        allPorts(),
	})
	if err != nil {
		t.Fatal(err)
	}
	an := ds.AllPortsAnalysis()
	full := an.Completeness(ds.End, 0)
	if full.Union < 100 {
		t.Fatalf("lab union = %d", full.Union)
	}
	// NT-style local services must be active-only.
	if full.ActiveOnly == 0 {
		t.Error("no active-only services; NT local services should be invisible passively")
	}
	m := Fig11Matrix(ds)
	if len(m.Rows) < 100 {
		t.Errorf("Fig 11 rows = %d", len(m.Rows))
	}
	if tbl := Figure11(ds); len(tbl.Rows()) != len(m.Rows) {
		t.Error("Figure11 table rows mismatch")
	}
}

func TestUDPDatasetSmall(t *testing.T) {
	cfg := smallConfig()
	cfg.Seed = 0xD0D5EED
	ds, err := Build(BuildOptions{
		Cfg:             cfg,
		Days:            1,
		ScanStartOffset: time.Hour,
		ScanEvery:       48 * time.Hour,
		ScanCount:       1,
		ScanRate:        10,
		TCPPorts:        []uint16{},
		UDPPorts:        campus.SelectedUDPPorts,
	})
	if err != nil {
		t.Fatal(err)
	}
	an := ds.AllPortsAnalysis()
	table := an.UDPSummary(campus.SelectedUDPPorts, ds.Net.Plan().ProbeTargets())
	if table.ActiveDefinitelyOpenTotal == 0 {
		t.Error("no definitely-open UDP services")
	}
	if table.NoResponseAnyPort == 0 {
		t.Error("no dead space in UDP probe")
	}
	var netbios core.UDPPortSummary
	for _, ps := range table.Ports {
		if ps.Port == campus.UDPPortNetBIOS {
			netbios = ps
		}
	}
	if netbios.PossiblyOpen == 0 {
		t.Error("no possibly-open NetBIOS hosts (paper: 4,238)")
	}
	if tbl := Table7(ds); len(tbl.Rows()) != 5 {
		t.Errorf("Table 7 rows = %d", len(tbl.Rows()))
	}
}

func TestBreakDatasetSmall(t *testing.T) {
	cfg := smallConfig()
	cfg.Start = time.Date(2006, 12, 16, 10, 0, 0, 0, time.UTC)
	cfg.DHCPHosts = 25
	cfg.PPPHosts = 8
	cfg.VPNHosts = 4
	ds, err := Build(BuildOptions{
		Cfg:             cfg,
		Days:            11,
		ScanStartOffset: time.Hour,
		ScanEvery:       12 * time.Hour,
		ScanCount:       22,
		ScanRate:        4,
		Links: []capture.LinkID{
			capture.LinkCommercial1, capture.LinkCommercial2, capture.LinkInternet2,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if fig := Figure12(ds); len(fig.Series) != 4 {
		t.Error("Figure 12 series missing")
	}
	tbl := Table8(ds, "Table 8 (break)")
	if len(tbl.Rows()) != 4 { // 3 links + total
		t.Errorf("Table 8 rows = %d", len(tbl.Rows()))
	}
	// Internet2 must see far fewer servers than the commercial links.
	i2 := ds.PerLink[capture.LinkInternet2]
	c1 := ds.PerLink[capture.LinkCommercial1]
	if len(i2.AddrFirstSeen(nil)) >= len(c1.AddrFirstSeen(nil)) {
		t.Error("Internet2 should see fewer servers than Commercial 1")
	}
}
