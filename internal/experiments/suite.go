package experiments

import "sync"

// Suite lazily builds and caches the datasets the experiments share, so
// running every table and figure (or every benchmark) simulates each
// campaign exactly once.
type Suite struct {
	mu sync.Mutex

	sem18 *Dataset
	sem90 *Dataset
	brk   *Dataset
	lab   *Dataset
	udp   *Dataset
}

var (
	// Shared is the process-wide suite used by cmd/repro and the root
	// benchmarks.
	Shared = &Suite{}
)

func (s *Suite) get(slot **Dataset, build func() (*Dataset, error)) (*Dataset, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if *slot != nil {
		return *slot, nil
	}
	ds, err := build()
	if err != nil {
		return nil, err
	}
	*slot = ds
	return ds, nil
}

// Semester18d returns the cached DTCP1-18d dataset.
func (s *Suite) Semester18d() (*Dataset, error) { return s.get(&s.sem18, Semester18d) }

// Semester90d returns the cached DTCP1-90d dataset.
func (s *Suite) Semester90d() (*Dataset, error) { return s.get(&s.sem90, Semester90d) }

// Break11d returns the cached DTCPbreak dataset.
func (s *Suite) Break11d() (*Dataset, error) { return s.get(&s.brk, Break11d) }

// Lab10d returns the cached DTCPall dataset.
func (s *Suite) Lab10d() (*Dataset, error) { return s.get(&s.lab, Lab10d) }

// UDP1d returns the cached DUDP dataset.
func (s *Suite) UDP1d() (*Dataset, error) { return s.get(&s.udp, UDP1d) }
