package obs

import (
	"math/bits"
	"runtime"
	"sync/atomic"
	"time"
	"unsafe"
)

// Histogram buckets span the latency range that matters for this
// system — sub-microsecond atomic ops up to multi-minute sweeps — on a
// log-linear grid: each power-of-two octave of nanoseconds is split
// into histSub equal linear sub-buckets, giving ~19% relative bucket
// width everywhere without per-histogram bucket configuration.
const (
	histMinShift = 8  // first bound 2^8 ns = 256ns; everything below lands in bucket 0
	histMaxShift = 38 // ~275s; everything at or above is the overflow bucket
	histSubShift = 2
	histSub      = 1 << histSubShift // 4 linear sub-buckets per octave

	// numBuckets = underflow + (octaves × sub-buckets) + overflow.
	numBuckets = (histMaxShift-histMinShift)*histSub + 2
)

// bucketIdx maps a duration in nanoseconds to its bucket.
func bucketIdx(ns uint64) int {
	if ns < 1<<histMinShift {
		return 0
	}
	exp := bits.Len64(ns) - 1 // floor(log2(ns)), >= histMinShift here
	if exp >= histMaxShift {
		return numBuckets - 1
	}
	sub := (ns >> (uint(exp) - histSubShift)) & (histSub - 1)
	return 1 + (exp-histMinShift)*histSub + int(sub)
}

// bucketBoundNanos returns the inclusive upper bound of bucket i in
// integer nanoseconds. Samples are integral, so emitting le = bound/1e9
// gives exact cumulative semantics: every sample in buckets 0..i is
// <= bound, every sample above is > bound. The final bucket is +Inf and
// has no finite bound.
func bucketBoundNanos(i int) uint64 {
	if i == 0 {
		return 1<<histMinShift - 1
	}
	k := i - 1
	octave := uint(histMinShift + k/histSub)
	sub := uint64(k%histSub) + 1
	return 1<<octave + sub<<(octave-histSubShift) - 1
}

// histStripe is one CPU-local slice of the histogram. Padding keeps
// adjacent stripes off one cache line's worth of false sharing for the
// hottest fields (the first buckets and the running sum).
type histStripe struct {
	counts [numBuckets]atomic.Uint64
	sum    atomic.Int64 // nanoseconds
	_      [40]byte
}

// Histogram is a log-linear latency histogram with a lock-free striped
// hot path. Observe picks a stripe from the observer's stack address —
// no goroutine pinning, no allocation, no shared cache line under
// concurrent load — and exposition sums the stripes.
type Histogram struct {
	stripes []histStripe
	mask    uintptr
}

// histStripes picks a power-of-two stripe count sized to the machine.
func histStripes() int {
	n := runtime.GOMAXPROCS(0)
	if n > 16 {
		n = 16
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

func newHistogram() *Histogram {
	n := histStripes()
	return &Histogram{stripes: make([]histStripe, n), mask: uintptr(n - 1)}
}

// stripeFor hashes a stack address into a stripe index. Distinct
// goroutines run on distinct stacks, so concurrent observers spread
// across stripes; the shift drops the always-zero low bits of a stack
// slot address.
func (h *Histogram) stripeFor() *histStripe {
	var probe byte
	return &h.stripes[(uintptr(unsafe.Pointer(&probe))>>10)&h.mask]
}

// Observe records one duration. Zero-alloc, lock-free; nil-safe no-op.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	s := h.stripeFor()
	s.counts[bucketIdx(uint64(ns))].Add(1)
	s.sum.Add(ns)
}

// histSnapshot is the summed view exposition writes.
type histSnapshot struct {
	counts [numBuckets]uint64
	count  uint64
	sum    int64 // nanoseconds
}

func (h *Histogram) snapshot() histSnapshot {
	var out histSnapshot
	if h == nil {
		return out
	}
	for i := range h.stripes {
		s := &h.stripes[i]
		for b := 0; b < numBuckets; b++ {
			out.counts[b] += s.counts[b].Load()
		}
		out.sum += s.sum.Load()
	}
	for b := 0; b < numBuckets; b++ {
		out.count += out.counts[b]
	}
	return out
}

// Count returns the total number of observations (summed across
// stripes; exact once concurrent observers quiesce).
func (h *Histogram) Count() uint64 {
	return h.snapshot().count
}

// Sum returns the total observed time.
func (h *Histogram) Sum() time.Duration {
	return time.Duration(h.snapshot().sum)
}
