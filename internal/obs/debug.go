package obs

import (
	"net/http"
	"net/http/pprof"
)

// DebugHandler returns the mux a daemon serves on its -debug-addr:
// net/http/pprof under /debug/pprof/, the flight-recorder dump at
// /debug/flight, and a second copy of /metrics so an operator pointed
// at the debug port has everything in one place.
func (r *Registry) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/flight", r.Flight().Handler())
	mux.Handle("/metrics", r.Handler())
	return mux
}
