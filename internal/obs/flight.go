package obs

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"sync"
	"syscall"
	"time"
	"unsafe"
)

// TraceKind identifies what a flight-recorder event describes.
type TraceKind uint8

const (
	TraceBatchDispatched TraceKind = iota
	TraceSnapshotSealed
	TraceCheckpointCut
	TraceCheckpointRestored
	TraceFeedConnected
	TraceFeedDisconnected
	TraceExpirySweep
	TraceSweepCompleted
	traceKinds
)

// traceMeta names each kind and its two payload fields for the dump.
var traceMeta = [traceKinds]struct{ name, a, b string }{
	TraceBatchDispatched:    {"batch-dispatched", "pkts", "batches"},
	TraceSnapshotSealed:     {"snapshot-sealed", "services", "us"},
	TraceCheckpointCut:      {"checkpoint-cut", "bytes", "us"},
	TraceCheckpointRestored: {"checkpoint-restored", "services", "us"},
	TraceFeedConnected:      {"feed-connected", "attempt", ""},
	TraceFeedDisconnected:   {"feed-disconnected", "drops", ""},
	TraceExpirySweep:        {"expiry-sweep", "expired", ""},
	TraceSweepCompleted:     {"sweep-completed", "probes", "us"},
}

// BatchSample is the dispatch sampling interval: recording every batch
// at ~1M pkts/s would wrap the ring in milliseconds, so callers record
// one batch-dispatched event per BatchSample dispatches.
const BatchSample = 64

// flightDefaultPerStripe sizes each stripe's ring; total capacity is
// perStripe × stripes (≈1–4k events — minutes of history at steady
// state, seconds around an incident, which is the window that matters).
const flightDefaultPerStripe = 256

// traceRec is one fixed-size event. tag carries an identity string
// (feed address, checkpoint kind); callers pass pre-existing strings so
// recording stays allocation-free.
type traceRec struct {
	at   int64 // UnixNano
	kind TraceKind
	tag  string
	a, b int64
}

type flightStripe struct {
	mu  sync.Mutex
	pos uint64
	buf []traceRec
	_   [24]byte
}

// Recorder is an always-on, fixed-size ring of recent trace events,
// striped to keep recording off any shared lock. Each stripe is guarded
// by its own mutex — uncontended in steady state (stripe choice hashes
// the caller's stack address) and, unlike a racy lock-free ring, clean
// under the race detector that CI runs over every instrumented package.
type Recorder struct {
	stripes []flightStripe
	mask    uintptr
}

// NewRecorder returns a recorder holding perStripe events per stripe
// (stripe count scales with GOMAXPROCS, capped at 8).
func NewRecorder(perStripe int) *Recorder {
	if perStripe <= 0 {
		perStripe = flightDefaultPerStripe
	}
	n := runtime.GOMAXPROCS(0)
	if n > 8 {
		n = 8
	}
	p := 1
	for p < n {
		p <<= 1
	}
	r := &Recorder{stripes: make([]flightStripe, p), mask: uintptr(p - 1)}
	for i := range r.stripes {
		r.stripes[i].buf = make([]traceRec, perStripe)
	}
	return r
}

// Record appends one event, overwriting the oldest when the stripe ring
// is full. Zero-alloc (tag must be a pre-existing string); nil-safe.
func (r *Recorder) Record(kind TraceKind, tag string, a, b int64) {
	if r == nil {
		return
	}
	var probe byte
	s := &r.stripes[(uintptr(unsafe.Pointer(&probe))>>10)&r.mask]
	now := time.Now().UnixNano()
	s.mu.Lock()
	s.buf[s.pos&uint64(len(s.buf)-1)] = traceRec{at: now, kind: kind, tag: tag, a: a, b: b}
	s.pos++
	s.mu.Unlock()
}

// Event is one decoded flight-recorder entry.
type Event struct {
	At   time.Time
	Kind TraceKind
	Tag  string
	A, B int64
}

// Events returns the recorded history, oldest first.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	var out []Event
	for i := range r.stripes {
		s := &r.stripes[i]
		s.mu.Lock()
		n := s.pos
		cap64 := uint64(len(s.buf))
		start := uint64(0)
		if n > cap64 {
			start = n - cap64
		}
		for j := start; j < n; j++ {
			rec := s.buf[j&(cap64-1)]
			out = append(out, Event{At: time.Unix(0, rec.at), Kind: rec.kind, Tag: rec.tag, A: rec.a, B: rec.b})
		}
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].At.Before(out[j].At) })
	return out
}

// Dump writes the merged history as text, oldest first — the
// /debug/flight and SIGQUIT payload.
func (r *Recorder) Dump(w io.Writer) error {
	bw := bufio.NewWriter(w)
	events := r.Events()
	fmt.Fprintf(bw, "flight recorder: %d events\n", len(events))
	for _, e := range events {
		m := traceMeta[e.Kind]
		fmt.Fprintf(bw, "%s %s", e.At.UTC().Format("2006-01-02T15:04:05.000000Z"), m.name)
		if e.Tag != "" {
			fmt.Fprintf(bw, " tag=%s", e.Tag)
		}
		if m.a != "" {
			fmt.Fprintf(bw, " %s=%d", m.a, e.A)
		}
		if m.b != "" {
			fmt.Fprintf(bw, " %s=%d", m.b, e.B)
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// Handler serves the flight-recorder dump — mount at /debug/flight.
func (r *Recorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		r.Dump(w)
	})
}

// DumpOnSIGQUIT installs a handler that writes the flight history to
// stderr whenever the process receives SIGQUIT (kill -QUIT <pid>), then
// keeps running — the classic in-flight "what just happened" probe.
// The goroutine runs for the life of the process.
func (r *Recorder) DumpOnSIGQUIT() {
	if r == nil {
		return
	}
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGQUIT)
	go func() {
		for range ch {
			fmt.Fprintln(os.Stderr, "--- SIGQUIT flight dump ---")
			r.Dump(os.Stderr)
		}
	}()
}
