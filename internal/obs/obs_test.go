package obs

import (
	"math"
	"math/bits"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "a counter")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	if again := r.Counter("test_total", "a counter"); again != c {
		t.Fatal("re-registering the same counter returned a different instance")
	}
	g := r.Gauge("test_gauge", "a gauge")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
}

func TestNilReceiversAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var rec *Recorder
	c.Add(1)
	c.Inc()
	g.Set(1)
	h.Observe(time.Second)
	rec.Record(TraceSnapshotSealed, "", 1, 2)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || rec.Events() != nil {
		t.Fatal("nil receivers mutated state")
	}
}

func TestRegistrySchemaConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "x")
	for _, fn := range []func(){
		func() { r.Gauge("x_total", "x") },
		func() { r.CounterVec("x_total", "x", "site") },
		func() { r.Counter("0bad", "x") },
		func() { r.CounterVec("y_total", "y", "le") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("schema violation did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestVecSeries(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("site_events_total", "events per site", "site")
	v.With("campus-a").Add(3)
	v.With("campus-b").Add(5)
	if v.With("campus-a") != v.With("campus-a") {
		t.Fatal("With not stable")
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`site_events_total{site="campus-a"} 3`,
		`site_events_total{site="campus-b"} 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestBucketIdxMapping(t *testing.T) {
	cases := []struct {
		ns   uint64
		want int
	}{
		{0, 0},
		{255, 0},
		{256, 1}, // start of first octave
		{319, 1}, // 256 + 63
		{320, 2}, // second sub-bucket
		{511, 4}, // top of first octave
		{512, 5}, // next octave
		{1 << 37, numBuckets - 5},
		{1<<38 - 1, numBuckets - 2},
		{1 << 38, numBuckets - 1}, // overflow
		{math.MaxUint64, numBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketIdx(c.ns); got != c.want {
			t.Errorf("bucketIdx(%d) = %d, want %d", c.ns, got, c.want)
		}
	}
	// Every representable value maps into range, bounds are monotone,
	// and each value is <= its bucket's upper bound and > the previous
	// bucket's bound.
	prev := uint64(0)
	for i := 0; i < numBuckets-1; i++ {
		b := bucketBoundNanos(i)
		if b <= prev {
			t.Fatalf("bucket bound %d (%d) not above previous (%d)", i, b, prev)
		}
		if got := bucketIdx(b); got != i {
			t.Errorf("upper bound %d maps to bucket %d, want %d (inclusive)", b, got, i)
		}
		if got := bucketIdx(b + 1); got != i+1 {
			t.Errorf("bound+1 %d maps to bucket %d, want %d", b+1, got, i+1)
		}
		prev = b
	}
	_ = bits.Len64 // anchor the import used by the implementation
}

func TestHistogramObserveAndSnapshot(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency")
	durations := []time.Duration{
		100 * time.Nanosecond,
		time.Microsecond,
		time.Millisecond,
		time.Second,
		5 * time.Minute, // overflow bucket
		-time.Second,    // clamped to 0
	}
	for _, d := range durations {
		h.Observe(d)
	}
	if got := h.Count(); got != uint64(len(durations)) {
		t.Fatalf("count = %d, want %d", got, len(durations))
	}
	wantSum := 100*time.Nanosecond + time.Microsecond + time.Millisecond + time.Second + 5*time.Minute
	if got := h.Sum(); got != wantSum {
		t.Fatalf("sum = %v, want %v", got, wantSum)
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `lat_seconds_bucket{le="+Inf"} 6`) {
		t.Errorf("missing +Inf bucket:\n%s", out)
	}
	if !strings.Contains(out, "lat_seconds_count 6") {
		t.Errorf("missing _count:\n%s", out)
	}
	if err := Lint(strings.NewReader(out)); err != nil {
		t.Errorf("exposition fails lint: %v\n%s", err, out)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := newHistogram()
	const goroutines, per = 8, 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(i) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != goroutines*per {
		t.Fatalf("count = %d, want %d", got, goroutines*per)
	}
}

func TestScrapeHooksAndFuncs(t *testing.T) {
	r := NewRegistry()
	var src uint64
	r.CounterFunc("mirrored_total", "mirror", func() float64 { return float64(src) })
	hooked := r.Gauge("hooked", "set by hook")
	r.OnScrape(func() { hooked.Set(7) })
	src = 99
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "mirrored_total 99") {
		t.Errorf("CounterFunc not read at scrape:\n%s", out)
	}
	if !strings.Contains(out, "hooked 7") {
		t.Errorf("OnScrape hook not run:\n%s", out)
	}
}

func TestEscapeLabelValue(t *testing.T) {
	cases := map[string]string{
		"plain":         "plain",
		`back\slash`:    `back\\slash`,
		`qu"ote`:        `qu\"ote`,
		"new\nline":     `new\nline`,
		`all\"三` + "\n": `all\\\"三\n`,
	}
	for in, want := range cases {
		if got := EscapeLabelValue(in); got != want {
			t.Errorf("EscapeLabelValue(%q) = %q, want %q", in, got, want)
		}
	}
}

// The hot-path operations must not allocate: they run per batch, per
// probe, per frame inside paths whose allocation budgets are CI-gated.
func TestZeroAllocHotPath(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hot_total", "hot counter")
	g := r.Gauge("hot_gauge", "hot gauge")
	h := r.Histogram("hot_seconds", "hot histogram")
	rec := r.Flight()

	if n := testing.AllocsPerRun(1000, func() { c.Add(1) }); n != 0 {
		t.Errorf("Counter.Add allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Set(1.5) }); n != 0 {
		t.Errorf("Gauge.Set allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(time.Microsecond) }); n != 0 {
		t.Errorf("Histogram.Observe allocates %v/op, want 0", n)
	}
	tag := "feed-1"
	if n := testing.AllocsPerRun(1000, func() { rec.Record(TraceFeedConnected, tag, 1, 0) }); n != 0 {
		t.Errorf("Recorder.Record allocates %v/op, want 0", n)
	}
}

func TestFlightRecorder(t *testing.T) {
	rec := NewRecorder(4)
	for i := int64(0); i < 100; i++ {
		rec.Record(TraceBatchDispatched, "", i, i*2)
	}
	rec.Record(TraceFeedConnected, "site-a:9444", 3, 0)
	events := rec.Events()
	if len(events) == 0 {
		t.Fatal("no events recorded")
	}
	total := 4 * len(rec.stripes)
	if len(events) > total {
		t.Fatalf("ring leaked: %d events > capacity %d", len(events), total)
	}
	for i := 1; i < len(events); i++ {
		if events[i].At.Before(events[i-1].At) {
			t.Fatal("events not time-sorted")
		}
	}
	var sb strings.Builder
	if err := rec.Dump(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "feed-connected tag=site-a:9444") {
		t.Errorf("dump missing tagged event:\n%s", sb.String())
	}
}

func TestWritePrometheusDeterministic(t *testing.T) {
	r := NewRegistry()
	v := r.GaugeVec("z_metric", "z", "shard")
	v.With("9").Set(9)
	v.With("1").Set(1)
	r.Counter("a_total", "a").Inc()
	var first strings.Builder
	if err := r.WritePrometheus(&first); err != nil {
		t.Fatal(err)
	}
	var second strings.Builder
	if err := r.WritePrometheus(&second); err != nil {
		t.Fatal(err)
	}
	if first.String() != second.String() {
		t.Fatal("exposition not deterministic")
	}
	if !strings.Contains(first.String(), "# TYPE a_total counter") {
		t.Errorf("missing TYPE line:\n%s", first.String())
	}
	ai := strings.Index(first.String(), "a_total")
	zi := strings.Index(first.String(), "z_metric")
	if ai < 0 || zi < 0 || ai > zi {
		t.Errorf("families not name-sorted:\n%s", first.String())
	}
}
