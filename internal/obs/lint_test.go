package obs

import (
	"strings"
	"testing"
)

func lintErr(t *testing.T, text string) error {
	t.Helper()
	return Lint(strings.NewReader(text))
}

func TestLintAcceptsWellFormed(t *testing.T) {
	good := `# HELP a_total things
# TYPE a_total counter
a_total 5
# HELP b_seconds latencies
# TYPE b_seconds histogram
b_seconds_bucket{le="0.001"} 2
b_seconds_bucket{le="0.01"} 3
b_seconds_bucket{le="+Inf"} 4
b_seconds_sum 0.123
b_seconds_count 4
# HELP c_info per-site gauge
# TYPE c_info gauge
c_info{site="x",role="hub \"primary\""} 1
c_info{site="y",role="a\\b"} 0
`
	if err := lintErr(t, good); err != nil {
		t.Fatalf("well-formed exposition rejected: %v", err)
	}
}

func TestLintRejections(t *testing.T) {
	cases := map[string]string{
		"sample without HELP/TYPE": "a_total 5\n",
		"TYPE before HELP":         "# TYPE a_total counter\n# HELP a_total x\na_total 1\n",
		"duplicate HELP":           "# HELP a x\n# TYPE a counter\na 1\n# HELP a x\n",
		"duplicate series":         "# HELP a x\n# TYPE a counter\na{s=\"1\"} 1\na{s=\"1\"} 2\n",
		"dup series reordered":     "# HELP a x\n# TYPE a gauge\na{s=\"1\",t=\"2\"} 1\na{t=\"2\",s=\"1\"} 2\n",
		"bad metric name":          "# HELP 9a x\n# TYPE 9a counter\n9a 1\n",
		"bad label name":           "# HELP a x\n# TYPE a counter\na{__n=\"1\"} 1\n",
		"bad value":                "# HELP a x\n# TYPE a counter\na nope\n",
		"negative counter":         "# HELP a x\n# TYPE a counter\na -1\n",
		"unknown type":             "# HELP a x\n# TYPE a widget\na 1\n",
		"interleaved families":     "# HELP a x\n# TYPE a counter\n# HELP b x\n# TYPE b counter\na 1\n",
		"family reopened":          "# HELP a x\n# TYPE a counter\na 1\n# HELP b x\n# TYPE b counter\nb 1\na 2\n",
		"le not ascending": "# HELP h x\n# TYPE h histogram\n" +
			"h_bucket{le=\"0.01\"} 1\nh_bucket{le=\"0.001\"} 2\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 2\n",
		"bucket count decreases": "# HELP h x\n# TYPE h histogram\n" +
			"h_bucket{le=\"0.001\"} 5\nh_bucket{le=\"0.01\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
		"missing +Inf": "# HELP h x\n# TYPE h histogram\n" +
			"h_bucket{le=\"0.001\"} 1\nh_sum 1\nh_count 1\n",
		"count != +Inf": "# HELP h x\n# TYPE h histogram\n" +
			"h_bucket{le=\"+Inf\"} 4\nh_sum 1\nh_count 5\n",
		"missing _sum": "# HELP h x\n# TYPE h histogram\n" +
			"h_bucket{le=\"+Inf\"} 4\nh_count 4\n",
		"bare histogram sample": "# HELP h x\n# TYPE h histogram\nh 4\n",
		"unterminated labels":   "# HELP a x\n# TYPE a counter\na{s=\"1\" 1\n",
		"raw newline escape":    "# HELP a x\n# TYPE a counter\na{s=\"1\\q\"} 1\n",
		"empty exposition":      "",
	}
	for name, text := range cases {
		if err := lintErr(t, text); err == nil {
			t.Errorf("%s: lint accepted invalid exposition:\n%s", name, text)
		}
	}
}

func TestLintRegistryRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("rt_total", "round trip").Add(3)
	r.Gauge("rt_gauge", `gauge with "quotes" and \slashes`).Set(-2.5)
	h := r.HistogramVec("rt_seconds", "latency", "stage")
	h.With("parse").Observe(150e3)
	h.With("apply").Observe(2e6)
	v := r.CounterVec("rt_site_total", "per site", "site")
	v.With(`we"ird\site` + "\n").Add(1)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if err := lintErr(t, sb.String()); err != nil {
		t.Fatalf("registry output fails its own lint: %v\n%s", err, sb.String())
	}
}
