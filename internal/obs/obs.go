// Package obs is the dependency-free telemetry subsystem: a typed
// metrics registry (atomic counters, gauges, log-linear histograms with
// a lock-free striped hot path), a Prometheus text-exposition writer, a
// strict exposition linter, and an always-on flight recorder of recent
// trace events.
//
// Design constraints, in order:
//
//  1. The hot path is free. Counter.Add, Gauge.Set, Histogram.Observe
//     and Recorder.Record allocate nothing and take no registry lock —
//     they touch only pre-registered atomics (or, for the recorder, a
//     striped ring under a per-stripe mutex). Instrumented code paths
//     are CI-gated at zero allocations.
//  2. Scrapes see a coherent-enough view. Exposition walks the registry
//     under its mutex and reads every atomic once; histograms sum their
//     stripes at scrape time. Per-series values are exact; cross-series
//     skew is bounded by one scrape.
//  3. Nil receivers are no-ops. A subsystem holding an optional metrics
//     bundle can call h.Observe(d) on a nil *Histogram without guards,
//     so instrumentation never forks the logic it measures.
//
// Metric and label names are validated at registration time (panic on
// violation — registration is programmer-controlled, like http.Handle).
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind is the exposition type of a metric family.
type Kind uint8

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// Registry holds metric families and the flight recorder. One registry
// per process is the normal shape; the facade creates one per Pipeline
// unless the caller shares theirs via Config.Telemetry.
type Registry struct {
	mu       sync.Mutex
	fams     map[string]*family
	order    []string // registration order; exposition sorts
	onScrape []func() // hooks run (under mu) before each exposition
	flight   *Recorder
}

// family is one metric name: HELP/TYPE plus its series (one per label
// vector; a single unlabeled series for plain metrics).
type family struct {
	name   string
	help   string
	kind   Kind
	labels []string // label names, fixed at registration
	series map[string]*series
	keys   []string // series keys, sorted lazily at scrape
	dirty  bool     // keys need re-sorting
}

// series is one sample stream: exactly one of the value fields is set.
type series struct {
	labelVals []string
	c         *Counter
	g         *Gauge
	h         *Histogram
	fn        func() float64 // CounterFunc / GaugeFunc
}

// NewRegistry returns an empty registry with an attached flight
// recorder.
func NewRegistry() *Registry {
	return &Registry{
		fams:   make(map[string]*family),
		flight: NewRecorder(flightDefaultPerStripe),
	}
}

// Flight returns the registry's flight recorder.
func (r *Registry) Flight() *Recorder {
	if r == nil {
		return nil
	}
	return r.flight
}

// OnScrape registers fn to run at the start of every exposition, before
// any family is written — the hook point for mirroring externally
// maintained tallies (stage counters, checkpoint stats) into registry
// series. Hooks run under the registry lock; they must not call
// registration methods.
func (r *Registry) OnScrape(fn func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.onScrape = append(r.onScrape, fn)
}

// register creates or fetches the family, enforcing one (kind, labels)
// schema per name.
func (r *Registry) register(name, help string, kind Kind, labels []string) *family {
	if !validMetricName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validLabelName(l) {
			panic(fmt.Sprintf("obs: metric %q: invalid label name %q", name, l))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.fams[name]
	if !ok {
		f = &family{
			name:   name,
			help:   help,
			kind:   kind,
			labels: append([]string(nil), labels...),
			series: make(map[string]*series),
		}
		r.fams[name] = f
		r.order = append(r.order, name)
		return f
	}
	if f.kind != kind || len(f.labels) != len(labels) {
		panic(fmt.Sprintf("obs: metric %q re-registered with different schema", name))
	}
	for i := range labels {
		if f.labels[i] != labels[i] {
			panic(fmt.Sprintf("obs: metric %q re-registered with different labels", name))
		}
	}
	return f
}

// seriesKey joins label values unambiguously (values may contain any
// bytes; 0xff never starts a UTF-8 rune so collisions need a crafted
// pair, and even then the exposition would merely merge two series).
func seriesKey(vals []string) string {
	return strings.Join(vals, "\xff")
}

// getOrAdd returns the series for vals, creating it via mk on first use.
func (f *family) getOrAdd(vals []string, mk func() *series) *series {
	if len(vals) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q: got %d label values, want %d", f.name, len(vals), len(f.labels)))
	}
	k := seriesKey(vals)
	s, ok := f.series[k]
	if !ok {
		s = mk()
		s.labelVals = append([]string(nil), vals...)
		f.series[k] = s
		f.keys = append(f.keys, k)
		f.dirty = true
	}
	return s
}

// sortedKeys returns series keys in sorted order for deterministic
// exposition.
func (f *family) sortedKeys() []string {
	if f.dirty {
		sort.Strings(f.keys)
		f.dirty = false
	}
	return f.keys
}

// Counter is a monotonically increasing uint64. The zero value is
// usable but unregistered; obtain registered counters from a Registry.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Set forces the counter to v — for mirroring a tally that some other
// subsystem already maintains monotonically (stage counters, checkpoint
// stats). Calling Set with a smaller value breaks counter semantics;
// the mirrored source must itself be monotonic.
func (c *Counter) Set(v uint64) {
	if c == nil {
		return
	}
	c.v.Store(v)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds delta (not atomic against concurrent Add; use for
// single-writer gauges or prefer Set).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Counter registers (or fetches) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, KindCounter, nil)
	r.mu.Lock()
	defer r.mu.Unlock()
	s := f.getOrAdd(nil, func() *series { return &series{c: new(Counter)} })
	return s.c
}

// Gauge registers (or fetches) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, KindGauge, nil)
	r.mu.Lock()
	defer r.mu.Unlock()
	s := f.getOrAdd(nil, func() *series { return &series{g: new(Gauge)} })
	return s.g
}

// Histogram registers (or fetches) an unlabeled log-linear latency
// histogram.
func (r *Registry) Histogram(name, help string) *Histogram {
	f := r.register(name, help, KindHistogram, nil)
	r.mu.Lock()
	defer r.mu.Unlock()
	s := f.getOrAdd(nil, func() *series { return &series{h: newHistogram()} })
	return s.h
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — for tallies another subsystem already maintains. fn must be
// monotonic and safe to call concurrently.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	f := r.register(name, help, KindCounter, nil)
	r.mu.Lock()
	defer r.mu.Unlock()
	f.getOrAdd(nil, func() *series { return &series{fn: fn} })
}

// GaugeFunc registers a gauge read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.register(name, help, KindGauge, nil)
	r.mu.Lock()
	defer r.mu.Unlock()
	f.getOrAdd(nil, func() *series { return &series{fn: fn} })
}

// CounterVec is a counter family with a fixed label schema.
type CounterVec struct {
	r *Registry
	f *family
}

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if len(labels) == 0 {
		panic(fmt.Sprintf("obs: CounterVec %q needs at least one label", name))
	}
	return &CounterVec{r: r, f: r.register(name, help, KindCounter, labels)}
}

// With returns the counter for the given label values, creating the
// series on first use. The returned pointer is stable — cache it on hot
// paths rather than calling With per event.
func (v *CounterVec) With(labelVals ...string) *Counter {
	v.r.mu.Lock()
	defer v.r.mu.Unlock()
	s := v.f.getOrAdd(labelVals, func() *series { return &series{c: new(Counter)} })
	return s.c
}

// GaugeVec is a gauge family with a fixed label schema.
type GaugeVec struct {
	r *Registry
	f *family
}

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if len(labels) == 0 {
		panic(fmt.Sprintf("obs: GaugeVec %q needs at least one label", name))
	}
	return &GaugeVec{r: r, f: r.register(name, help, KindGauge, labels)}
}

// With returns the gauge for the given label values.
func (v *GaugeVec) With(labelVals ...string) *Gauge {
	v.r.mu.Lock()
	defer v.r.mu.Unlock()
	s := v.f.getOrAdd(labelVals, func() *series { return &series{g: new(Gauge)} })
	return s.g
}

// HistogramVec is a histogram family with a fixed label schema.
type HistogramVec struct {
	r *Registry
	f *family
}

// HistogramVec registers a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, labels ...string) *HistogramVec {
	if len(labels) == 0 {
		panic(fmt.Sprintf("obs: HistogramVec %q needs at least one label", name))
	}
	return &HistogramVec{r: r, f: r.register(name, help, KindHistogram, labels)}
}

// With returns the histogram for the given label values. The pointer is
// stable; hot paths should cache it per label vector.
func (v *HistogramVec) With(labelVals ...string) *Histogram {
	v.r.mu.Lock()
	defer v.r.mu.Unlock()
	s := v.f.getOrAdd(labelVals, func() *series { return &series{h: newHistogram()} })
	return s.h
}

// validMetricName checks [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// validLabelName checks [a-zA-Z_][a-zA-Z0-9_]* and rejects the reserved
// __ prefix and the histogram-internal "le".
func validLabelName(s string) bool {
	if s == "" || strings.HasPrefix(s, "__") || s == "le" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
