package obs

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// EscapeLabelValue renders a label value per the Prometheus text
// exposition format 0.0.4: backslash, double-quote and newline are
// escaped; everything else passes through. This is the one copy of the
// escaping logic both daemons used to hand-roll.
func EscapeLabelValue(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP string (backslash and newline only — quotes
// are legal in help text).
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

// formatValue renders a sample value. Counters hold integral values and
// render without an exponent; gauges use the shortest round-trip form.
func formatValue(v float64) string {
	if v == float64(uint64(v)) && v >= 0 && v < 1e15 {
		return strconv.FormatUint(uint64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// writeLabels renders {name="value",...} or nothing for the empty set.
// extra ("le" for histogram buckets) is appended last when non-empty.
func writeLabels(w *bufio.Writer, names, vals []string, extraName, extraVal string) {
	if len(names) == 0 && extraName == "" {
		return
	}
	w.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			w.WriteByte(',')
		}
		w.WriteString(n)
		w.WriteString(`="`)
		w.WriteString(EscapeLabelValue(vals[i]))
		w.WriteByte('"')
	}
	if extraName != "" {
		if len(names) > 0 {
			w.WriteByte(',')
		}
		w.WriteString(extraName)
		w.WriteString(`="`)
		w.WriteString(extraVal)
		w.WriteByte('"')
	}
	w.WriteByte('}')
}

// WritePrometheus writes every registered family in text exposition
// format 0.0.4: families in name order, HELP and TYPE once per family,
// series in deterministic label order. Scrape hooks run first.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, fn := range r.onScrape {
		fn()
	}
	bw := bufio.NewWriter(w)
	names := append([]string(nil), r.order...)
	sort.Strings(names)
	for _, name := range names {
		f := r.fams[name]
		if len(f.series) == 0 {
			continue
		}
		fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		for _, k := range f.sortedKeys() {
			s := f.series[k]
			switch {
			case s.h != nil:
				writeHistogramSeries(bw, f, s)
			case s.c != nil:
				writeSample(bw, f.name, f.labels, s.labelVals, float64(s.c.Value()))
			case s.g != nil:
				writeSample(bw, f.name, f.labels, s.labelVals, s.g.Value())
			case s.fn != nil:
				writeSample(bw, f.name, f.labels, s.labelVals, s.fn())
			}
		}
	}
	return bw.Flush()
}

func writeSample(w *bufio.Writer, name string, labels, vals []string, v float64) {
	w.WriteString(name)
	writeLabels(w, labels, vals, "", "")
	w.WriteByte(' ')
	w.WriteString(formatValue(v))
	w.WriteByte('\n')
}

// writeHistogramSeries emits the cumulative _bucket lines, _sum and
// _count for one histogram series. Only buckets where the cumulative
// count changes are emitted (plus the mandatory +Inf) — legal per the
// format, and it keeps a ~122-bucket grid compact when most buckets are
// empty.
func writeHistogramSeries(w *bufio.Writer, f *family, s *series) {
	snap := s.h.snapshot()
	var cum uint64
	for i := 0; i < numBuckets-1; i++ {
		if snap.counts[i] == 0 {
			continue // cumulative count unchanged; sparse emission is legal
		}
		cum += snap.counts[i]
		le := strconv.FormatFloat(float64(bucketBoundNanos(i))/1e9, 'g', -1, 64)
		w.WriteString(f.name)
		w.WriteString("_bucket")
		writeLabels(w, f.labels, s.labelVals, "le", le)
		w.WriteByte(' ')
		w.WriteString(strconv.FormatUint(cum, 10))
		w.WriteByte('\n')
	}
	cum += snap.counts[numBuckets-1]
	w.WriteString(f.name)
	w.WriteString("_bucket")
	writeLabels(w, f.labels, s.labelVals, "le", "+Inf")
	w.WriteByte(' ')
	w.WriteString(strconv.FormatUint(cum, 10))
	w.WriteByte('\n')

	w.WriteString(f.name)
	w.WriteString("_sum")
	writeLabels(w, f.labels, s.labelVals, "", "")
	w.WriteByte(' ')
	w.WriteString(strconv.FormatFloat(float64(snap.sum)/1e9, 'g', -1, 64))
	w.WriteByte('\n')

	w.WriteString(f.name)
	w.WriteString("_count")
	writeLabels(w, f.labels, s.labelVals, "", "")
	w.WriteByte(' ')
	w.WriteString(strconv.FormatUint(cum, 10))
	w.WriteByte('\n')
}

// Handler returns the /metrics endpoint: text exposition of the whole
// registry.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}
