package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Lint is a strict parser for the Prometheus text exposition format
// 0.0.4 — stricter than Prometheus itself, because our output is
// machine-generated and any slack hides a generator bug. It enforces:
//
//   - metric-name and label-name charsets;
//   - every sample preceded by exactly one HELP and one TYPE for its
//     family, HELP first;
//   - no duplicate series (same name + label set twice);
//   - all series of a family contiguous (no interleaving);
//   - histogram completeness: le values strictly ascending with +Inf
//     last, cumulative bucket counts monotone, _count equal to the
//     +Inf bucket, _sum present;
//   - every value parses as a float; counters non-negative.
//
// It returns the first violation found, or nil.
func Lint(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)

	fams := make(map[string]*lintFam)
	seen := make(map[string]bool) // full series dedup: name + canonical label string

	type histState struct {
		lastLe   float64
		lastCum  float64
		sawInf   bool
		infVal   float64
		sawSum   bool
		sawCount bool
	}
	hists := make(map[string]*histState) // keyed by family + base labels

	var curFam string
	lineNo := 0
	errf := func(format string, args ...any) error {
		return fmt.Errorf("metrics line %d: %s", lineNo, fmt.Sprintf(format, args...))
	}

	closeFam := func() error {
		for k, h := range hists {
			if !h.sawInf {
				return fmt.Errorf("histogram series %q missing le=\"+Inf\" bucket", k)
			}
			if !h.sawSum {
				return fmt.Errorf("histogram series %q missing _sum", k)
			}
			if !h.sawCount {
				return fmt.Errorf("histogram series %q missing _count", k)
			}
		}
		hists = make(map[string]*histState)
		return nil
	}

	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				return errf("malformed comment %q (only # HELP / # TYPE allowed)", line)
			}
			name := fields[2]
			if !validMetricName(name) {
				return errf("invalid metric name %q", name)
			}
			switch fields[1] {
			case "HELP":
				if f := fams[name]; f != nil {
					return errf("duplicate # HELP for %q", name)
				}
				if name != curFam {
					if err := closeFam(); err != nil {
						return errf("%v", err)
					}
					if old := fams[curFam]; old != nil {
						old.closed = true
					}
					curFam = name
				}
				help := ""
				if len(fields) == 4 {
					help = fields[3]
				}
				fams[name] = &lintFam{help: help}
			case "TYPE":
				f := fams[name]
				if f == nil {
					return errf("# TYPE %s before its # HELP", name)
				}
				if f.typ != "" {
					return errf("duplicate # TYPE for %q", name)
				}
				if name != curFam {
					return errf("# TYPE %s interleaved with family %s", name, curFam)
				}
				if len(fields) != 4 {
					return errf("# TYPE %s missing type", name)
				}
				f.typ = fields[3]
				switch fields[3] {
				case "counter", "gauge", "histogram", "untyped", "summary":
					// "untyped"/"summary" are legal in the format; our own
					// generator never emits them, but Lint also runs against
					// third-party exposition in tests.
				default:
					return errf("unknown type %q for %s", fields[3], name)
				}
			}
			continue
		}

		name, labels, value, err := parseSample(line)
		if err != nil {
			return errf("%v", err)
		}
		fam, base, sub := histFamilyOf(name, fams)
		f := fams[fam]
		if f == nil || f.typ == "" {
			return errf("sample %s before # HELP and # TYPE for %q", name, fam)
		}
		if fam != curFam {
			return errf("sample for family %q interleaved with family %q", fam, curFam)
		}
		if f.closed {
			return errf("family %q reopened after another family started", fam)
		}

		serKey := name + "{" + canonicalLabels(labels) + "}"
		if seen[serKey] {
			return errf("duplicate series %s", serKey)
		}
		seen[serKey] = true

		if f.typ == "histogram" && base {
			hk := fam + "{" + canonicalLabels(stripLe(labels)) + "}"
			h := hists[hk]
			if h == nil {
				h = &histState{lastLe: math.Inf(-1), lastCum: -1}
				hists[hk] = h
			}
			switch sub {
			case "bucket":
				leStr, ok := labelValue(labels, "le")
				if !ok {
					return errf("histogram bucket %s missing le label", name)
				}
				var le float64
				if leStr == "+Inf" {
					le = math.Inf(1)
				} else if le, err = strconv.ParseFloat(leStr, 64); err != nil {
					return errf("bad le %q: %v", leStr, err)
				}
				if h.sawInf {
					return errf("bucket after le=\"+Inf\" in %s", hk)
				}
				if le <= h.lastLe {
					return errf("le %q not ascending in %s", leStr, hk)
				}
				if value < h.lastCum {
					return errf("cumulative bucket count decreased at le=%q in %s", leStr, hk)
				}
				h.lastLe, h.lastCum = le, value
				if math.IsInf(le, 1) {
					h.sawInf, h.infVal = true, value
				}
			case "sum":
				h.sawSum = true
			case "count":
				h.sawCount = true
				if !h.sawInf {
					return errf("_count before +Inf bucket in %s", hk)
				}
				if value != h.infVal {
					return errf("_count %v != +Inf bucket %v in %s", value, h.infVal, hk)
				}
			default:
				return errf("bare sample %s for histogram family %s", name, fam)
			}
		} else if f.typ == "histogram" {
			return errf("bare sample %s for histogram family %s", name, fam)
		}

		if f.typ == "counter" && value < 0 {
			return errf("negative counter %s = %v", name, value)
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("metrics read: %v", err)
	}
	if err := closeFam(); err != nil {
		return fmt.Errorf("metrics: %v", err)
	}
	if curFam == "" && len(fams) == 0 {
		return fmt.Errorf("metrics: empty exposition")
	}
	return nil
}

// lintFam is the per-family state Lint tracks while scanning.
type lintFam struct {
	help, typ string
	closed    bool // a different family started after this one
}

// histFamilyOf strips a _bucket/_sum/_count suffix when the base name
// is a registered histogram family. base reports whether name belongs
// to a histogram; sub is the suffix ("" for a plain sample).
func histFamilyOf(name string, fams map[string]*lintFam) (fam string, base bool, sub string) {
	for _, suffix := range [...]string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suffix) {
			cand := strings.TrimSuffix(name, suffix)
			if f := fams[cand]; f != nil && f.typ == "histogram" {
				return cand, true, suffix[1:]
			}
		}
	}
	return name, false, ""
}

type sampleLabel struct{ name, value string }

// parseSample parses `name{l1="v1",...} value` or `name value`.
func parseSample(line string) (string, []sampleLabel, float64, error) {
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		return "", nil, 0, fmt.Errorf("malformed sample %q", line)
	}
	name := line[:i]
	if !validMetricName(name) {
		return "", nil, 0, fmt.Errorf("invalid metric name %q", name)
	}
	var labels []sampleLabel
	rest := line[i:]
	if rest[0] == '{' {
		rest = rest[1:]
		for {
			if rest == "" {
				return "", nil, 0, fmt.Errorf("unterminated label set in %q", line)
			}
			if rest[0] == '}' {
				rest = rest[1:]
				break
			}
			eq := strings.IndexByte(rest, '=')
			if eq < 0 || len(rest) < eq+2 || rest[eq+1] != '"' {
				return "", nil, 0, fmt.Errorf("malformed label in %q", line)
			}
			lname := rest[:eq]
			if !validLintLabelName(lname) {
				return "", nil, 0, fmt.Errorf("invalid label name %q", lname)
			}
			val, rem, err := unquoteLabel(rest[eq+2:])
			if err != nil {
				return "", nil, 0, fmt.Errorf("%v in %q", err, line)
			}
			labels = append(labels, sampleLabel{lname, val})
			rest = rem
			if rest != "" && rest[0] == ',' {
				rest = rest[1:]
			}
		}
	}
	rest = strings.TrimLeft(rest, " ")
	// A timestamp field after the value is legal in the format; our
	// writer never emits one, and rejecting it keeps Lint strict.
	if strings.ContainsRune(rest, ' ') {
		return "", nil, 0, fmt.Errorf("unexpected trailing fields in %q", line)
	}
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad value %q: %v", rest, err)
	}
	return name, labels, v, nil
}

// unquoteLabel consumes an escaped label value up to its closing quote,
// returning the decoded value and the remainder after the quote.
func unquoteLabel(s string) (string, string, error) {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '"':
			return b.String(), s[i+1:], nil
		case '\\':
			if i+1 >= len(s) {
				return "", "", fmt.Errorf("dangling escape")
			}
			i++
			switch s[i] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", "", fmt.Errorf("bad escape \\%c", s[i])
			}
		case '\n':
			return "", "", fmt.Errorf("raw newline in label value")
		default:
			b.WriteByte(c)
		}
	}
	return "", "", fmt.Errorf("unterminated label value")
}

// validLintLabelName is validLabelName minus the "le" restriction —
// exposition legitimately contains le on bucket lines.
func validLintLabelName(s string) bool {
	return s == "le" || validLabelName(s)
}

func labelValue(labels []sampleLabel, name string) (string, bool) {
	for _, l := range labels {
		if l.name == name {
			return l.value, true
		}
	}
	return "", false
}

func stripLe(labels []sampleLabel) []sampleLabel {
	out := make([]sampleLabel, 0, len(labels))
	for _, l := range labels {
		if l.name != "le" {
			out = append(out, l)
		}
	}
	return out
}

// canonicalLabels renders a sorted, escaped label string for dedup keys.
func canonicalLabels(labels []sampleLabel) string {
	ls := append([]sampleLabel(nil), labels...)
	for i := 1; i < len(ls); i++ {
		for j := i; j > 0 && ls[j].name < ls[j-1].name; j-- {
			ls[j], ls[j-1] = ls[j-1], ls[j]
		}
	}
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.name)
		b.WriteString(`="`)
		b.WriteString(EscapeLabelValue(l.value))
		b.WriteByte('"')
	}
	return b.String()
}
