// Package sim provides the discrete-event simulation engine underneath the
// campus model: a virtual clock, an event scheduler, and periodic-process
// helpers.
//
// The engine is deliberately single-threaded — events execute in strict
// timestamp order (ties broken by scheduling order), which combined with
// the deterministic RNG in internal/stats makes every experiment exactly
// reproducible. Sweeping 18 simulated days of campus traffic executes in
// well under a second of wall time, so there is nothing to win from
// parallelism and a great deal of reproducibility to lose.
package sim

import (
	"container/heap"
	"time"
)

// Event is a callback scheduled to run at a virtual time.
type Event func(now time.Time)

type scheduled struct {
	at  time.Time
	seq uint64 // tie-break: FIFO among equal timestamps
	fn  Event
	idx int
	// canceled events stay in the heap but are skipped on pop.
	canceled bool
}

type eventQueue []*scheduled

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if !q[i].at.Equal(q[j].at) {
		return q[i].at.Before(q[j].at)
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].idx = i
	q[j].idx = j
}
func (q *eventQueue) Push(x any) {
	s := x.(*scheduled)
	s.idx = len(*q)
	*q = append(*q, s)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	s := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return s
}

// Handle identifies a scheduled event so it can be canceled.
type Handle struct{ s *scheduled }

// Cancel prevents the event from firing. Canceling an already-fired or
// already-canceled event is a no-op.
func (h Handle) Cancel() {
	if h.s != nil {
		h.s.canceled = true
	}
}

// Engine is the event loop. The zero value is unusable; construct with New.
type Engine struct {
	now   time.Time
	queue eventQueue
	seq   uint64
	// processed counts executed (non-canceled) events, exposed for tests
	// and progress reporting.
	processed uint64
}

// New returns an engine whose clock starts at the given time.
func New(start time.Time) *Engine {
	return &Engine{now: start}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Time { return e.now }

// Processed returns how many events have executed.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns how many events are queued (including canceled ones not
// yet reaped).
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules fn at the absolute time at. Scheduling in the past (before
// the current virtual time) panics: it indicates a model bug that would
// otherwise silently reorder causality.
func (e *Engine) At(at time.Time, fn Event) Handle {
	if at.Before(e.now) {
		panic("sim: scheduling event in the past")
	}
	s := &scheduled{at: at, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, s)
	return Handle{s: s}
}

// After schedules fn at now+d.
func (e *Engine) After(d time.Duration, fn Event) Handle {
	return e.At(e.now.Add(d), fn)
}

// Every schedules fn at start and then every interval thereafter, until the
// returned handle is canceled. fn observes the firing time.
func (e *Engine) Every(start time.Time, interval time.Duration, fn Event) *Ticker {
	if interval <= 0 {
		panic("sim: non-positive ticker interval")
	}
	t := &Ticker{engine: e, interval: interval, fn: fn}
	t.handle = e.At(start, t.fire)
	return t
}

// Ticker repeats an event at a fixed interval.
type Ticker struct {
	engine   *Engine
	interval time.Duration
	fn       Event
	handle   Handle
	stopped  bool
}

func (t *Ticker) fire(now time.Time) {
	if t.stopped {
		return
	}
	t.fn(now)
	if !t.stopped {
		t.handle = t.engine.At(now.Add(t.interval), t.fire)
	}
}

// Stop cancels future firings.
func (t *Ticker) Stop() {
	t.stopped = true
	t.handle.Cancel()
}

// RunUntil executes events in order until the queue is empty or the next
// event is after the deadline. The clock lands on the deadline afterwards,
// so subsequent After() calls measure from the end of the run.
func (e *Engine) RunUntil(deadline time.Time) {
	for len(e.queue) > 0 {
		next := e.queue[0]
		if next.at.After(deadline) {
			break
		}
		heap.Pop(&e.queue)
		if next.canceled {
			continue
		}
		e.now = next.at
		e.processed++
		next.fn(e.now)
	}
	if e.now.Before(deadline) {
		e.now = deadline
	}
}

// Run executes every queued event (including ones scheduled while running)
// until the queue drains. Use RunUntil for open-ended processes like
// tickers, which would otherwise run forever.
func (e *Engine) Run() {
	for len(e.queue) > 0 {
		next := heap.Pop(&e.queue).(*scheduled)
		if next.canceled {
			continue
		}
		e.now = next.at
		e.processed++
		next.fn(e.now)
	}
}
