package sim

import (
	"testing"
	"time"
)

var t0 = time.Date(2006, 9, 19, 10, 0, 0, 0, time.UTC)

func TestEventsRunInTimeOrder(t *testing.T) {
	e := New(t0)
	var order []int
	e.After(3*time.Second, func(time.Time) { order = append(order, 3) })
	e.After(1*time.Second, func(time.Time) { order = append(order, 1) })
	e.After(2*time.Second, func(time.Time) { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if e.Processed() != 3 {
		t.Errorf("Processed = %d", e.Processed())
	}
}

func TestTieBreakFIFO(t *testing.T) {
	e := New(t0)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(t0.Add(time.Second), func(time.Time) { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("equal-time events reordered: %v", order)
		}
	}
}

func TestClockAdvances(t *testing.T) {
	e := New(t0)
	var seen time.Time
	e.After(5*time.Minute, func(now time.Time) { seen = now })
	e.Run()
	if !seen.Equal(t0.Add(5 * time.Minute)) {
		t.Errorf("event time = %v", seen)
	}
	if !e.Now().Equal(t0.Add(5 * time.Minute)) {
		t.Errorf("Now = %v", e.Now())
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := New(t0)
	e.After(time.Hour, func(time.Time) {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic scheduling in the past")
		}
	}()
	e.At(t0, func(time.Time) {})
}

func TestCancel(t *testing.T) {
	e := New(t0)
	fired := false
	h := e.After(time.Second, func(time.Time) { fired = true })
	h.Cancel()
	h.Cancel() // double-cancel is a no-op
	e.Run()
	if fired {
		t.Error("canceled event fired")
	}
	if e.Processed() != 0 {
		t.Errorf("Processed = %d", e.Processed())
	}
}

func TestEventsCanScheduleEvents(t *testing.T) {
	e := New(t0)
	count := 0
	var chain func(now time.Time)
	chain = func(now time.Time) {
		count++
		if count < 5 {
			e.After(time.Second, chain)
		}
	}
	e.After(time.Second, chain)
	e.Run()
	if count != 5 {
		t.Errorf("count = %d", count)
	}
	if !e.Now().Equal(t0.Add(5 * time.Second)) {
		t.Errorf("Now = %v", e.Now())
	}
}

func TestRunUntilStopsAndAdvancesClock(t *testing.T) {
	e := New(t0)
	var fired []time.Time
	tick := e.Every(t0.Add(time.Hour), time.Hour, func(now time.Time) {
		fired = append(fired, now)
	})
	deadline := t0.Add(3*time.Hour + 30*time.Minute)
	e.RunUntil(deadline)
	if len(fired) != 3 {
		t.Fatalf("fired %d times", len(fired))
	}
	if !e.Now().Equal(deadline) {
		t.Errorf("Now = %v, want deadline", e.Now())
	}
	tick.Stop()
	e.RunUntil(t0.Add(10 * time.Hour))
	if len(fired) != 3 {
		t.Errorf("ticker fired after Stop: %d", len(fired))
	}
}

func TestTickerInterval(t *testing.T) {
	e := New(t0)
	var times []time.Time
	e.Every(t0, 12*time.Hour, func(now time.Time) { times = append(times, now) })
	e.RunUntil(t0.Add(48 * time.Hour))
	if len(times) != 5 { // t0, +12h, +24h, +36h, +48h
		t.Fatalf("fired %d times: %v", len(times), times)
	}
	for i := 1; i < len(times); i++ {
		if times[i].Sub(times[i-1]) != 12*time.Hour {
			t.Errorf("interval %d = %v", i, times[i].Sub(times[i-1]))
		}
	}
}

func TestTickerStopFromWithinCallback(t *testing.T) {
	e := New(t0)
	count := 0
	var tk *Ticker
	tk = e.Every(t0, time.Second, func(now time.Time) {
		count++
		if count == 3 {
			tk.Stop()
		}
	})
	e.Run()
	if count != 3 {
		t.Errorf("count = %d", count)
	}
}

func TestPending(t *testing.T) {
	e := New(t0)
	e.After(time.Second, func(time.Time) {})
	e.After(2*time.Second, func(time.Time) {})
	if e.Pending() != 2 {
		t.Errorf("Pending = %d", e.Pending())
	}
	e.Run()
	if e.Pending() != 0 {
		t.Errorf("Pending after Run = %d", e.Pending())
	}
}

func TestEveryPanicsOnBadInterval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for non-positive interval")
		}
	}()
	New(t0).Every(t0, 0, func(time.Time) {})
}

func BenchmarkScheduleAndRun(b *testing.B) {
	e := New(t0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.After(time.Duration(i%1000)*time.Millisecond, func(time.Time) {})
		if i%1024 == 1023 {
			e.Run()
		}
	}
	e.Run()
}
