package query

import (
	"fmt"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"time"

	"servdisc/internal/core"
	"servdisc/internal/netaddr"
	"servdisc/internal/packet"
)

// Query is one typed request against the index. Zero-valued fields are
// wildcards; set fields are conjunctive (all must match). Results come
// back in the canonical (addr, proto, port) order regardless of which
// index dimension drove the scan, so identical queries against identical
// epochs are byte-identical — and pagination via PageToken is stable.
type Query struct {
	// Port restricts to one destination port (0 = any).
	Port uint16
	// Proto restricts to one transport (0 = any).
	Proto packet.IPProtocol
	// Category restricts to one application class (CatAny = any).
	Category Category
	// Prefix restricts to an owner subnet. The zero Prefix is a wildcard.
	Prefix netaddr.Prefix
	// Provenance restricts to one class when HasProvenance is set (the
	// zero Provenance is a real class, PassiveOnly).
	Provenance    core.Provenance
	HasProvenance bool
	// MinFreshness keeps only services with evidence at or after this
	// time (zero = any).
	MinFreshness time.Time
	// Limit caps the hits per page (DefaultLimit when <= 0, clamped to
	// MaxLimit).
	Limit int
	// PageToken resumes a paginated scan where the previous Result left
	// off (Result.NextPageToken). Empty starts from the beginning.
	PageToken string
}

// Limits for one result page.
const (
	DefaultLimit = 1000
	MaxLimit     = 10000
)

// Result is one page of hits plus the cursor for the next.
type Result struct {
	Hits []Doc `json:"hits"`
	// NextPageToken is non-empty when more hits may follow; feed it back
	// via Query.PageToken. Deterministic for a given epoch and query.
	NextPageToken string `json:"next_page_token,omitempty"`
	// Epoch identifies the index generation that answered.
	Epoch uint64 `json:"epoch"`
	// Total is the number of services in the index (not the match count —
	// counting matches would cost a full scan).
	Total int `json:"total"`
}

// pageToken encodes the last-returned key as "addr:port/proto" (the
// ServiceKey string form). parseKey inverts it.
func pageToken(k core.ServiceKey) string { return k.String() }

// ParseKey parses the "addr:port/proto" form ServiceKey.String renders —
// page tokens, exact-key query params, cache keys.
func ParseKey(s string) (core.ServiceKey, error) {
	var k core.ServiceKey
	slash := strings.LastIndexByte(s, '/')
	if slash < 0 {
		return k, fmt.Errorf("query: key %q: missing /proto", s)
	}
	if err := k.Proto.UnmarshalText([]byte(s[slash+1:])); err != nil {
		return k, fmt.Errorf("query: key %q: %v", s, err)
	}
	colon := strings.LastIndexByte(s[:slash], ':')
	if colon < 0 {
		return k, fmt.Errorf("query: key %q: missing :port", s)
	}
	port, err := strconv.ParseUint(s[colon+1:slash], 10, 16)
	if err != nil {
		return k, fmt.Errorf("query: key %q: bad port: %v", s, err)
	}
	k.Port = uint16(port)
	addr, err := netaddr.ParseV4(s[:colon])
	if err != nil {
		return k, fmt.Errorf("query: key %q: %v", s, err)
	}
	k.Addr = addr
	return k, nil
}

// matches applies every predicate to a doc — the residual filter applied
// to candidates regardless of which dimension produced them.
func (q *Query) matches(d Doc) bool {
	if q.Port != 0 && d.Key.Port != q.Port {
		return false
	}
	if q.Proto != 0 && d.Key.Proto != q.Proto {
		return false
	}
	if q.Category != CatAny && CategoryOf(d.Key) != q.Category {
		return false
	}
	if q.Prefix.Bits() != 0 && !q.Prefix.Contains(d.Key.Addr) {
		return false
	}
	if q.HasProvenance && d.Prov != q.Provenance {
		return false
	}
	if !q.MinFreshness.IsZero() && d.Last.Before(q.MinFreshness) {
		return false
	}
	return true
}

// Dimension names the index dimension that would drive this query's
// scan — the same selection switch Epoch.Query applies, exposed so
// callers can label query-latency metrics by execution strategy
// ("which index answered") rather than by raw parameter shape.
func (q Query) Dimension() string {
	switch {
	case q.Prefix.Bits() == 32 && q.Port != 0 && q.Proto != 0:
		return "key"
	case q.Prefix.Bits() >= 24:
		return "prefix24"
	case q.Port != 0:
		return "port"
	case q.Category != CatAny:
		return "category"
	case q.Prefix.Bits() != 0:
		return "prefix"
	case q.HasProvenance:
		return "provenance"
	case !q.MinFreshness.IsZero():
		return "freshness"
	default:
		return "scan"
	}
}

// limit returns the clamped page size.
func (q *Query) limit() int {
	switch {
	case q.Limit <= 0:
		return DefaultLimit
	case q.Limit > MaxLimit:
		return MaxLimit
	default:
		return q.Limit
	}
}

// Query runs one request against this epoch. The epoch is immutable, so
// any number of goroutines may query it concurrently, lock-free, while
// the catalog builds successors.
func (e *Epoch) Query(q Query) (Result, error) {
	var after *core.ServiceKey
	if q.PageToken != "" {
		k, err := ParseKey(q.PageToken)
		if err != nil {
			return Result{}, fmt.Errorf("bad page token: %v", err)
		}
		after = &k
	}
	res := Result{Epoch: e.gen, Total: e.docs.len()}
	limit := q.limit()
	res.Hits = make([]Doc, 0, min(limit, 64))

	emit := func(d Doc) bool {
		if !q.matches(d) {
			return true
		}
		if len(res.Hits) == limit {
			res.NextPageToken = pageToken(res.Hits[limit-1].Key)
			return false
		}
		res.Hits = append(res.Hits, d)
		return true
	}
	emitKey := func(ke keyEntry) bool {
		d, ok := e.docs.get(ke.skey())
		if !ok {
			return true
		}
		return emit(d)
	}

	// Pick the candidate source: the most selective dimension the query
	// names. Every source yields candidates in canonical key order; emit
	// post-filters with the full predicate set.
	switch {
	case q.Prefix.Bits() == 32 && q.Port != 0 && q.Proto != 0:
		// Point lookup: the predicates pin one exact key (the key= form),
		// so probe the doc tree directly — O(log n), no posting-bucket
		// scan. emit still applies the full predicate set, so freshness
		// and provenance filters compose with the probe.
		k := core.ServiceKey{Addr: q.Prefix.Base(), Proto: q.Proto, Port: q.Port}
		if after == nil || after.Before(k) {
			if d, ok := e.docs.get(k); ok {
				emit(d)
			}
		}
	case q.Prefix.Bits() >= 24:
		// The whole prefix lies inside one /24 bucket.
		if t, ok := e.byPrefix[prefixBucket(q.Prefix.Base())]; ok {
			iterate(t, after, emitKey)
		}
	case q.Port != 0:
		if t, ok := e.byPort[q.Port]; ok {
			iterate(t, after, emitKey)
		}
	case q.Category != CatAny:
		if t, ok := e.byCat[q.Category]; ok {
			iterate(t, after, emitKey)
		}
	case q.Prefix.Bits() != 0:
		// A run of /24 buckets in address order: concatenation preserves
		// canonical order because keys sort address-major.
		base, last := q.Prefix.Base(), q.Prefix.Last()
		lo := sort.Search(len(e.pfxBases), func(i int) bool { return e.pfxBases[i] >= prefixBucket(base) })
		for _, b := range e.pfxBases[lo:] {
			if b > last {
				break
			}
			if after != nil && after.Addr > b|0xff {
				continue // whole bucket precedes the cursor
			}
			if !iterate(e.byPrefix[b], after, emitKey) {
				break
			}
		}
	case q.HasProvenance:
		iterate(e.byProv[q.Provenance%provClasses], after, emitKey)
	case !q.MinFreshness.IsZero():
		// Qualifying freshness buckets, k-way merged back into key order.
		// The bucket at the boundary may contain too-old entries; emit's
		// residual filter drops them.
		floor := e.freshBucket(q.MinFreshness)
		lo := sort.Search(len(e.freshBases), func(i int) bool { return e.freshBases[i] >= floor })
		var cursors []cursor[keyEntry]
		for _, b := range e.freshBases[lo:] {
			cursors = append(cursors, e.byFresh[b].seek(after))
		}
		mergeIterate(cursors, emitKey)
	default:
		c := e.docs.seek(after)
		for {
			d, ok := c.next()
			if !ok || !emit(d) {
				break
			}
		}
	}
	return res, nil
}

// iterate walks one posting tree from the cursor position, returning
// false when the consumer stopped.
func iterate(t stree[keyEntry], after *core.ServiceKey, f func(keyEntry) bool) bool {
	c := t.seek(after)
	for {
		e, ok := c.next()
		if !ok {
			return true
		}
		if !f(e) {
			return false
		}
	}
}

// mergeIterate merges already-positioned cursors into one key-ordered
// stream. Posting lists are disjoint (a key lives in exactly one bucket
// per dimension), so no dedup is needed.
func mergeIterate(cs []cursor[keyEntry], f func(keyEntry) bool) {
	// Small-k loser-free heap: linear scan for the minimum head. The
	// freshness dimension yields one cursor per bucket in the window —
	// typically a handful.
	for {
		best := -1
		var bestKey core.ServiceKey
		for i := range cs {
			e, ok := cs[i].peek()
			if !ok {
				continue
			}
			if best < 0 || e.skey().Before(bestKey) {
				best, bestKey = i, e.skey()
			}
		}
		if best < 0 {
			return
		}
		e, _ := cs[best].next()
		if !f(e) {
			return
		}
	}
}

// ParseHTTP builds a Query from URL parameters — the /query endpoint
// contract shared by passived and federated:
//
//	port=443 proto=tcp category=web prefix=10.16.0.0/16
//	prov=passive-only since=2006-09-19T00:00:00Z (or since=3600s ago)
//	limit=100 page=<next_page_token> key=10.16.0.9:443/tcp
//
// key= is the point-lookup shorthand: it expands to Prefix=<addr>/32,
// Port and Proto.
func ParseHTTP(values url.Values) (Query, error) {
	var q Query
	if s := values.Get("key"); s != "" {
		k, err := ParseKey(s)
		if err != nil {
			return q, err
		}
		q.Prefix, _ = netaddr.NewPrefix(k.Addr, 32)
		q.Port = k.Port
		q.Proto = k.Proto
	}
	if s := values.Get("port"); s != "" {
		p, err := strconv.ParseUint(s, 10, 16)
		if err != nil || p == 0 {
			return q, fmt.Errorf("bad port %q", s)
		}
		q.Port = uint16(p)
	}
	if s := values.Get("proto"); s != "" {
		if err := q.Proto.UnmarshalText([]byte(s)); err != nil {
			return q, err
		}
	}
	if s := values.Get("category"); s != "" {
		c, ok := ParseCategory(s)
		if !ok {
			return q, fmt.Errorf("bad category %q", s)
		}
		q.Category = c
	}
	if s := values.Get("prefix"); s != "" {
		p, err := netaddr.ParsePrefix(s)
		if err != nil {
			return q, err
		}
		q.Prefix = p
	}
	if s := values.Get("prov"); s != "" {
		if err := q.Provenance.UnmarshalText([]byte(s)); err != nil {
			return q, err
		}
		q.HasProvenance = true
	}
	if s := values.Get("since"); s != "" {
		t, err := time.Parse(time.RFC3339, s)
		if err != nil {
			return q, fmt.Errorf("bad since %q (want RFC3339)", s)
		}
		q.MinFreshness = t
	}
	if s := values.Get("limit"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 {
			return q, fmt.Errorf("bad limit %q", s)
		}
		q.Limit = n
	}
	q.PageToken = values.Get("page")
	return q, nil
}

// CacheKey renders the query (excluding pagination) canonically — the
// client cache's map key. Two queries with equal predicates share one
// entry regardless of field order at the call site.
func (q Query) CacheKey() string {
	var b strings.Builder
	if q.Port != 0 {
		fmt.Fprintf(&b, "port=%d;", q.Port)
	}
	if q.Proto != 0 {
		fmt.Fprintf(&b, "proto=%s;", q.Proto)
	}
	if q.Category != CatAny {
		fmt.Fprintf(&b, "cat=%s;", q.Category)
	}
	if q.Prefix.Bits() != 0 {
		fmt.Fprintf(&b, "pfx=%s;", q.Prefix)
	}
	if q.HasProvenance {
		fmt.Fprintf(&b, "prov=%s;", q.Provenance)
	}
	if !q.MinFreshness.IsZero() {
		fmt.Fprintf(&b, "since=%d;", q.MinFreshness.UnixNano())
	}
	fmt.Fprintf(&b, "limit=%d", q.limit())
	return b.String()
}
