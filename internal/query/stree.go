// Package query is the read path: secondary indexes over the live
// inventory, a typed paginated query API, event-stream filters, and a
// client-side cache. An index epoch is an immutable value — thousands of
// in-flight queries read it lock-free while the next epoch is patched
// forward from snapshot deltas in O(churn · log n), never by rescanning
// the inventory.
package query

import (
	"sort"

	"servdisc/internal/core"
)

// keyed constrains tree elements to anything addressable by a ServiceKey.
// Docs carry full records; index postings carry bare keys.
type keyed interface{ skey() core.ServiceKey }

// keyEntry is a bare ServiceKey as a tree element — the posting-list form.
type keyEntry core.ServiceKey

func (e keyEntry) skey() core.ServiceKey { return core.ServiceKey(e) }

// cmpKeys orders ServiceKeys canonically (addr, proto, port) — the same
// ordering as Inventory.Keys, so index iteration reproduces dump order.
func cmpKeys(a, b core.ServiceKey) int {
	switch {
	case a == b:
		return 0
	case a.Before(b):
		return -1
	default:
		return 1
	}
}

// Node arities. Leaves hold up to leafMax elements, inner nodes up to
// innerMax children. Small leaves keep the per-update path copy cheap
// (one leaf + a spine of inner nodes), which is what the O(churn) index
// maintenance gate measures; the fanout keeps a 2M-entry tree ~5 levels
// deep so point lookups stay a handful of binary searches.
const (
	leafMax  = 64
	innerMax = 16
)

// stree is a persistent (immutable, structurally shared) B+-tree keyed by
// ServiceKey. The zero value is the empty tree. All mutation goes through
// patch, which returns a new tree sharing every untouched subtree with
// the receiver — the same path-copying discipline as the core pmap, but
// ordered, so it can serve deterministic paginated range scans.
type stree[E keyed] struct {
	root *snode[E]
	size int
}

// snode is one tree node: a leaf (elems non-nil) or an inner node (kids
// non-nil). Nodes are immutable after construction.
type snode[E keyed] struct {
	elems []E
	kids  []*snode[E]
	max   core.ServiceKey // largest key in the subtree
	n     int             // elements in the subtree
}

func (t stree[E]) len() int { return t.size }

// get returns the element stored under k.
func (t stree[E]) get(k core.ServiceKey) (E, bool) {
	nd := t.root
	for nd != nil && nd.kids != nil {
		i := sort.Search(len(nd.kids), func(j int) bool { return cmpKeys(nd.kids[j].max, k) >= 0 })
		if i == len(nd.kids) {
			var zero E
			return zero, false
		}
		nd = nd.kids[i]
	}
	if nd == nil {
		var zero E
		return zero, false
	}
	i := sort.Search(len(nd.elems), func(j int) bool { return cmpKeys(nd.elems[j].skey(), k) >= 0 })
	if i < len(nd.elems) && nd.elems[i].skey() == k {
		return nd.elems[i], true
	}
	var zero E
	return zero, false
}

// patch returns a tree with adds upserted and dels removed. Both slices
// must be sorted by key and duplicate-free, and no key may appear in both.
// The receiver is unchanged; subtrees no op touches are shared, so the
// cost is O((|adds|+|dels|) · log n) node copies.
func (t stree[E]) patch(adds []E, dels []core.ServiceKey) stree[E] {
	if len(adds) == 0 && len(dels) == 0 {
		return t
	}
	var kids []*snode[E]
	if t.root == nil {
		if len(adds) == 0 {
			return t
		}
		kids = buildLeaves(adds)
	} else {
		kids = patchNode(t.root, adds, dels)
	}
	for len(kids) > 1 {
		kids = groupInner(kids)
	}
	if len(kids) == 0 {
		return stree[E]{}
	}
	root := kids[0]
	// Hoist single-child chains so the height tracks the population.
	for root.kids != nil && len(root.kids) == 1 {
		root = root.kids[0]
	}
	return stree[E]{root: root, size: root.n}
}

// patchNode applies the ops to one subtree, returning replacement nodes of
// the same height (possibly zero of them if everything was deleted, or
// several if inserts forced splits). Each returned node respects the
// arity bounds.
func patchNode[E keyed](nd *snode[E], adds []E, dels []core.ServiceKey) []*snode[E] {
	if nd.kids == nil {
		return patchLeaf(nd, adds, dels)
	}
	out := make([]*snode[E], 0, len(nd.kids)+1)
	changed := false
	ai, di := 0, 0
	for i, kid := range nd.kids {
		ahi, dhi := len(adds), len(dels)
		if i < len(nd.kids)-1 {
			// Ops with keys beyond the last kid's max still belong to the
			// last kid (inserts past the current right edge).
			max := kid.max
			ahi = ai + sort.Search(len(adds)-ai, func(j int) bool { return cmpKeys(adds[ai+j].skey(), max) > 0 })
			dhi = di + sort.Search(len(dels)-di, func(j int) bool { return cmpKeys(dels[di+j], max) > 0 })
		}
		if ahi == ai && dhi == di {
			out = append(out, kid)
		} else {
			changed = true
			out = append(out, patchNode(kid, adds[ai:ahi], dels[di:dhi])...)
		}
		ai, di = ahi, dhi
	}
	if !changed {
		return []*snode[E]{nd}
	}
	out = coalesce(out)
	if len(out) == 0 {
		return nil
	}
	return regroup(out)
}

// patchLeaf merges the ops into one leaf's elements, splitting the result
// into fresh leaves. Deletes of absent keys are ignored.
func patchLeaf[E keyed](nd *snode[E], adds []E, dels []core.ServiceKey) []*snode[E] {
	merged := make([]E, 0, len(nd.elems)+len(adds))
	changed := false
	ai, di := 0, 0
	for _, e := range nd.elems {
		k := e.skey()
		for ai < len(adds) && cmpKeys(adds[ai].skey(), k) < 0 {
			merged = append(merged, adds[ai])
			ai++
			changed = true
		}
		for di < len(dels) && cmpKeys(dels[di], k) < 0 {
			di++
		}
		if di < len(dels) && dels[di] == k {
			di++
			changed = true
			continue
		}
		if ai < len(adds) && adds[ai].skey() == k {
			merged = append(merged, adds[ai]) // upsert
			ai++
			changed = true
			continue
		}
		merged = append(merged, e)
	}
	if ai < len(adds) {
		merged = append(merged, adds[ai:]...)
		changed = true
	}
	if !changed {
		return []*snode[E]{nd}
	}
	if len(merged) == 0 {
		return nil
	}
	return buildLeaves(merged)
}

// buildLeaves splits a sorted element slice into evenly sized leaves. The
// leaves subslice the input (which is freshly built by the caller and
// never mutated afterwards).
func buildLeaves[E keyed](elems []E) []*snode[E] {
	parts := (len(elems) + leafMax - 1) / leafMax
	per := (len(elems) + parts - 1) / parts
	out := make([]*snode[E], 0, parts)
	for lo := 0; lo < len(elems); lo += per {
		hi := min(lo+per, len(elems))
		chunk := elems[lo:hi:hi]
		out = append(out, &snode[E]{elems: chunk, max: chunk[len(chunk)-1].skey(), n: len(chunk)})
	}
	return out
}

// coalesce merges an underfull node into its left neighbor when the pair
// fits in one node, bounding how far repeated deletions can fragment the
// tree.
func coalesce[E keyed](kids []*snode[E]) []*snode[E] {
	out := kids[:0]
	for _, k := range kids {
		if len(out) > 0 {
			prev := out[len(out)-1]
			if merged, ok := mergeNodes(prev, k); ok {
				out[len(out)-1] = merged
				continue
			}
		}
		out = append(out, k)
	}
	return out
}

// mergeNodes combines two same-height siblings when one is underfull and
// the pair fits a single node. Inputs are never mutated.
func mergeNodes[E keyed](a, b *snode[E]) (*snode[E], bool) {
	if a.kids == nil && b.kids == nil {
		if len(a.elems)+len(b.elems) > leafMax || (len(a.elems) >= leafMax/4 && len(b.elems) >= leafMax/4) {
			return nil, false
		}
		elems := make([]E, 0, len(a.elems)+len(b.elems))
		elems = append(append(elems, a.elems...), b.elems...)
		return &snode[E]{elems: elems, max: elems[len(elems)-1].skey(), n: len(elems)}, true
	}
	if a.kids != nil && b.kids != nil {
		if len(a.kids)+len(b.kids) > innerMax || (len(a.kids) >= innerMax/4 && len(b.kids) >= innerMax/4) {
			return nil, false
		}
		kids := make([]*snode[E], 0, len(a.kids)+len(b.kids))
		kids = append(append(kids, a.kids...), b.kids...)
		return &snode[E]{kids: kids, max: b.max, n: a.n + b.n}, true
	}
	return nil, false
}

// regroup wraps a run of same-height nodes into parents when it exceeds
// the arity bound, otherwise into a single parent-less replacement set.
// Used by patchNode to return nodes at its own height: the input is the
// node's new child list, the output the replacement node(s).
func regroup[E keyed](kids []*snode[E]) []*snode[E] {
	if len(kids) <= innerMax {
		return []*snode[E]{makeInner(kids)}
	}
	return groupInner(kids)
}

// groupInner packs nodes into evenly sized parents one level up.
func groupInner[E keyed](kids []*snode[E]) []*snode[E] {
	parts := (len(kids) + innerMax - 1) / innerMax
	per := (len(kids) + parts - 1) / parts
	out := make([]*snode[E], 0, parts)
	for lo := 0; lo < len(kids); lo += per {
		hi := min(lo+per, len(kids))
		out = append(out, makeInner(kids[lo:hi:hi]))
	}
	return out
}

func makeInner[E keyed](kids []*snode[E]) *snode[E] {
	n := 0
	for _, k := range kids {
		n += k.n
	}
	return &snode[E]{kids: kids, max: kids[len(kids)-1].max, n: n}
}

// cursor iterates a tree in key order, resumable from any position — the
// pagination and k-way-merge primitive. Zero allocation per step after
// construction.
type cursor[E keyed] struct {
	stack []cframe[E]
}

type cframe[E keyed] struct {
	nd *snode[E]
	i  int
}

// seek positions the cursor at the first element with key > after (or the
// first element overall when after is nil).
func (t stree[E]) seek(after *core.ServiceKey) cursor[E] {
	c := cursor[E]{}
	if t.root == nil {
		return c
	}
	c.stack = make([]cframe[E], 0, 8)
	nd := t.root
	for {
		if nd.kids != nil {
			i := 0
			if after != nil {
				a := *after
				i = sort.Search(len(nd.kids), func(j int) bool { return cmpKeys(nd.kids[j].max, a) > 0 })
			}
			if i == len(nd.kids) {
				// Everything in this subtree is ≤ after; unwind.
				c.stack = c.stack[:0]
				return c
			}
			c.stack = append(c.stack, cframe[E]{nd: nd, i: i})
			nd = nd.kids[i]
			continue
		}
		i := 0
		if after != nil {
			a := *after
			i = sort.Search(len(nd.elems), func(j int) bool { return cmpKeys(nd.elems[j].skey(), a) > 0 })
		}
		c.stack = append(c.stack, cframe[E]{nd: nd, i: i})
		if i == len(nd.elems) {
			c.advance()
		}
		return c
	}
}

// next returns the current element and steps forward; ok is false at the
// end of the tree.
func (c *cursor[E]) next() (E, bool) {
	if len(c.stack) == 0 {
		var zero E
		return zero, false
	}
	top := &c.stack[len(c.stack)-1]
	e := top.nd.elems[top.i]
	top.i++
	if top.i == len(top.nd.elems) {
		c.advance()
	}
	return e, true
}

// peek returns the current element without advancing.
func (c *cursor[E]) peek() (E, bool) {
	if len(c.stack) == 0 {
		var zero E
		return zero, false
	}
	top := &c.stack[len(c.stack)-1]
	return top.nd.elems[top.i], true
}

// advance pops exhausted frames and descends into the next leaf.
func (c *cursor[E]) advance() {
	for {
		c.stack = c.stack[:len(c.stack)-1]
		if len(c.stack) == 0 {
			return
		}
		top := &c.stack[len(c.stack)-1]
		top.i++
		if top.i < len(top.nd.kids) {
			nd := top.nd.kids[top.i]
			for nd.kids != nil {
				c.stack = append(c.stack, cframe[E]{nd: nd, i: 0})
				nd = nd.kids[0]
			}
			c.stack = append(c.stack, cframe[E]{nd: nd, i: 0})
			return
		}
	}
}

// each visits every element in key order until f returns false.
func (t stree[E]) each(f func(E) bool) {
	c := t.seek(nil)
	for {
		e, ok := c.next()
		if !ok || !f(e) {
			return
		}
	}
}
