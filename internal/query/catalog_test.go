package query

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"servdisc/internal/core"
	"servdisc/internal/netaddr"
	"servdisc/internal/packet"
)

func qdoc(i int, prov core.Provenance, last time.Time) Doc {
	k := tkey(i)
	return Doc{Key: k, Prov: prov, First: last.Add(-time.Hour), Last: last, Flows: i, Clients: 1}
}

// bruteQuery filters a doc set the obvious way: sort by key, apply every
// predicate, slice out the page.
func bruteQuery(docs map[core.ServiceKey]Doc, q Query) []Doc {
	keys := make([]core.ServiceKey, 0, len(docs))
	for k := range docs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].Before(keys[j]) })
	var after *core.ServiceKey
	if q.PageToken != "" {
		k, err := ParseKey(q.PageToken)
		if err != nil {
			panic(err)
		}
		after = &k
	}
	var out []Doc
	for _, k := range keys {
		if after != nil && !(*after).Before(k) {
			continue
		}
		d := docs[k]
		if !q.matches(d) {
			continue
		}
		out = append(out, d)
		if len(out) == q.limit() {
			break
		}
	}
	return out
}

func sameHits(t *testing.T, got, want []Doc, ctx string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d hits, want %d", ctx, len(got), len(want))
	}
	for i := range want {
		if !got[i].equal(want[i]) {
			t.Fatalf("%s: hit %d = %+v, want %+v", ctx, i, got[i], want[i])
		}
	}
}

// Random patches against a map model, with every dimension queried and
// checked after each epoch — including provenance flips and freshness
// moves of existing docs, the bucket-migration paths.
func TestCatalogPatchQueryModel(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	t0 := time.Date(2006, 9, 19, 10, 0, 0, 0, time.UTC)
	cat := NewCatalog(time.Hour)
	model := map[core.ServiceKey]Doc{}
	const universe = 3000

	queries := func() []Query {
		return []Query{
			{},
			{Port: 1000 + uint16(rng.Intn(8))},
			{Prefix: netaddr.MustParsePrefix("10.16.0.0/24")},
			{Prefix: netaddr.MustParsePrefix("10.16.0.0/22")},
			{Prefix: mustPrefix32(tkey(rng.Intn(universe)).Addr), Port: 1000 + uint16(rng.Intn(8))},
			{Provenance: core.ActiveOnly, HasProvenance: true},
			{Provenance: core.PassiveOnly, HasProvenance: true},
			{MinFreshness: t0.Add(time.Duration(rng.Intn(72)) * time.Hour)},
			{Port: 1001, MinFreshness: t0.Add(24 * time.Hour)},
			{Category: CatOther},
			{Limit: 7},
		}
	}

	for step := 0; step < 40; step++ {
		ups := map[core.ServiceKey]Doc{}
		for i, n := 0, rng.Intn(200); i < n; i++ {
			idx := rng.Intn(universe)
			last := t0.Add(time.Duration(rng.Intn(96)) * time.Hour)
			d := qdoc(idx, core.Provenance(rng.Intn(4)), last)
			ups[d.Key] = d
		}
		var removes []core.ServiceKey
		seen := map[core.ServiceKey]bool{}
		for i, n := 0, rng.Intn(100); i < n; i++ {
			k := tkey(rng.Intn(universe))
			if _, upserting := ups[k]; !upserting && !seen[k] {
				seen[k] = true
				removes = append(removes, k)
			}
		}
		upserts := make([]Doc, 0, len(ups))
		for _, d := range ups {
			upserts = append(upserts, d)
		}
		sort.Slice(upserts, func(i, j int) bool { return upserts[i].Key.Before(upserts[j].Key) })
		sort.Slice(removes, func(i, j int) bool { return removes[i].Before(removes[j]) })

		cat.Patch(upserts, removes)
		for _, d := range upserts {
			model[d.Key] = d
		}
		for _, k := range removes {
			delete(model, k)
		}

		ep := cat.Epoch()
		if ep.Len() != len(model) {
			t.Fatalf("step %d: epoch has %d docs, model %d", step, ep.Len(), len(model))
		}
		for qi, q := range queries() {
			q.Limit = 1 + rng.Intn(50)
			res, err := ep.Query(q)
			if err != nil {
				t.Fatalf("step %d query %d: %v", step, qi, err)
			}
			sameHits(t, res.Hits, bruteQuery(model, q), fmt.Sprintf("step %d query %d", step, qi))
		}
	}
}

func mustPrefix32(a netaddr.V4) netaddr.Prefix {
	p, err := netaddr.NewPrefix(a, 32)
	if err != nil {
		panic(err)
	}
	return p
}

// Pagination must be deterministic and lossless: walking any query in
// small pages yields exactly the single-shot result, in order.
func TestCatalogPagination(t *testing.T) {
	t0 := time.Date(2006, 9, 19, 10, 0, 0, 0, time.UTC)
	cat := NewCatalog(0)
	var docs []Doc
	for i := 0; i < 1000; i++ {
		docs = append(docs, qdoc(i, core.PassiveOnly, t0))
	}
	sort.Slice(docs, func(i, j int) bool { return docs[i].Key.Before(docs[j].Key) })
	cat.Rebuild(docs)
	ep := cat.Epoch()

	for _, q := range []Query{{}, {Port: 1003}, {Prefix: netaddr.MustParsePrefix("10.16.0.0/25")}} {
		want, err := ep.Query(Query{Port: q.Port, Prefix: q.Prefix, Limit: MaxLimit})
		if err != nil {
			t.Fatal(err)
		}
		var paged []Doc
		q.Limit = 7
		for {
			res, err := ep.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			paged = append(paged, res.Hits...)
			if res.NextPageToken == "" {
				break
			}
			q.PageToken = res.NextPageToken
			if len(paged) > len(want.Hits)+7 {
				t.Fatal("pagination does not terminate")
			}
		}
		sameHits(t, paged, want.Hits, "paged walk")
	}
}

// An epoch answers identically forever: queries against a retained epoch
// are unaffected by later patches, while the catalog's current epoch
// moves on.
func TestCatalogEpochImmutability(t *testing.T) {
	t0 := time.Date(2006, 9, 19, 10, 0, 0, 0, time.UTC)
	cat := NewCatalog(0)
	var docs []Doc
	for i := 0; i < 500; i++ {
		docs = append(docs, qdoc(i, core.PassiveOnly, t0))
	}
	sort.Slice(docs, func(i, j int) bool { return docs[i].Key.Before(docs[j].Key) })
	cat.Rebuild(docs)
	old := cat.Epoch()
	before, _ := old.Query(Query{Limit: MaxLimit})

	cat.Patch(nil, []core.ServiceKey{docs[0].Key, docs[1].Key})
	cat.Patch([]Doc{qdoc(2000, core.ActiveOnly, t0)}, nil)

	after, _ := old.Query(Query{Limit: MaxLimit})
	sameHits(t, after.Hits, before.Hits, "retained epoch")
	if cur := cat.Epoch(); cur.Len() != 499 {
		t.Fatalf("current epoch has %d docs, want 499", cur.Len())
	}
	if old.Gen() == cat.Epoch().Gen() {
		t.Fatal("generation did not advance")
	}
}

// engineDocs derives the expected doc set from a frozen inventory.
func engineDocs(inv *core.Inventory) map[core.ServiceKey]Doc {
	out := make(map[core.ServiceKey]Doc, inv.Len())
	for _, k := range inv.Keys() {
		out[k] = DocFromInventory(inv, k)
	}
	return out
}

// The index, maintained purely from OnSnapshot deltas, must track the
// engine's inventory exactly through discovery, re-observation, expiry
// and rebirth — at 1, 2 and 8 shards.
func TestCatalogFollowsEngineDeltas(t *testing.T) {
	for _, shards := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			pfx := netaddr.MustParsePrefix("10.20.0.0/16")
			t0 := time.Date(2006, 9, 19, 10, 0, 0, 0, time.UTC)
			sp := core.NewShardedPassive(pfx, nil, shards)
			defer sp.Close()
			sp.SetRetention(core.RetentionPolicy{PassiveTTL: 30 * time.Minute})
			sp.Run(context.Background())

			cat := NewCatalog(10 * time.Minute)
			var deltas, fulls int
			sp.OnSnapshot(func(prev, inv *core.Inventory, d core.SnapshotDelta) {
				if d.Full {
					fulls++
				} else {
					deltas++
				}
				cat.ApplyDelta(inv, d)
			})

			bld := packet.NewBuilder(0)
			client := packet.Endpoint{Addr: netaddr.MustParseV4("64.9.0.1"), Port: 33000}
			rng := rand.New(rand.NewSource(int64(shards)))
			endpoint := func(i int) packet.Endpoint {
				return packet.Endpoint{Addr: pfx.Base() + netaddr.V4(1+i/4), Port: uint16(2000 + i%4)}
			}

			now := t0
			for round := 0; round < 30; round++ {
				var batch []packet.Packet
				for i, n := 0, 50+rng.Intn(100); i < n; i++ {
					// Mix of new services and re-observations; advancing
					// time expires untouched records via the TTL.
					idx := rng.Intn(400)
					batch = append(batch, *bld.SynAck(now, endpoint(idx), client, 1, 1))
					now = now.Add(time.Second)
				}
				now = now.Add(5 * time.Minute)
				sp.HandleBatch(batch)
				sp.Flush()
				inv := sp.Snapshot()

				want := engineDocs(inv)
				ep := cat.Epoch()
				if ep.Len() != len(want) {
					t.Fatalf("round %d: index has %d docs, inventory %d", round, ep.Len(), len(want))
				}
				res, err := ep.Query(Query{Limit: MaxLimit})
				if err != nil {
					t.Fatal(err)
				}
				sameHits(t, res.Hits, bruteQuery(want, Query{Limit: MaxLimit}), fmt.Sprintf("round %d", round))
			}
			if deltas == 0 {
				t.Error("no delta-path snapshots observed — the O(churn) path never ran")
			}
			t.Logf("shards=%d: %d delta snapshots, %d full rebuilds", shards, deltas, fulls)
		})
	}
}

// ParseKey inverts ServiceKey.String for valid inputs and rejects junk.
func TestParseKeyRoundTrip(t *testing.T) {
	for _, k := range []core.ServiceKey{
		{Addr: netaddr.MustParseV4("10.16.0.9"), Proto: packet.ProtoTCP, Port: 443},
		{Addr: netaddr.MustParseV4("0.0.0.0"), Proto: packet.ProtoUDP, Port: 0},
		{Addr: netaddr.MustParseV4("255.255.255.255"), Proto: packet.ProtoTCP, Port: 65535},
	} {
		got, err := ParseKey(k.String())
		if err != nil || got != k {
			t.Errorf("round trip %v → %v, %v", k, got, err)
		}
	}
	for _, s := range []string{"", "10.0.0.1", "10.0.0.1:80", "10.0.0.1/tcp", "10.0.0.1:x/tcp", "10.0.0.1:80/bogus", ":80/tcp"} {
		if _, err := ParseKey(s); err == nil {
			t.Errorf("ParseKey(%q) accepted", s)
		}
	}
}
