package query

import (
	"testing"
	"time"

	"servdisc/internal/core"
	"servdisc/internal/netaddr"
	"servdisc/internal/packet"
)

// countingSource wraps a catalog and counts round trips.
type countingSource struct {
	cat   *Catalog
	calls int
}

func (s *countingSource) Query(q Query) (Result, error) {
	s.calls++
	return s.cat.Epoch().Query(q)
}

func cacheFixture(t *testing.T) (*countingSource, *Cache) {
	t.Helper()
	t0 := time.Date(2006, 9, 19, 10, 0, 0, 0, time.UTC)
	cat := NewCatalog(0)
	var docs []Doc
	for i := 0; i < 200; i++ {
		docs = append(docs, qdoc(i, core.PassiveOnly, t0))
	}
	sortEntriesDocs(docs)
	cat.Rebuild(docs)
	src := &countingSource{cat: cat}
	return src, NewCache(src, 16)
}

func sortEntriesDocs(docs []Doc) {
	for i := 1; i < len(docs); i++ {
		for j := i; j > 0 && docs[j].Key.Before(docs[j-1].Key); j-- {
			docs[j], docs[j-1] = docs[j-1], docs[j]
		}
	}
}

func TestCacheHitMissAndWarm(t *testing.T) {
	src, c := cacheFixture(t)
	q := Query{Port: 1003}
	r1, err := c.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if src.calls != 1 {
		t.Fatalf("source called %d times, want 1 (second read must hit)", src.calls)
	}
	if len(r1.Hits) != len(r2.Hits) {
		t.Fatal("cache returned a different result")
	}
	// Preemptive warm: the warmed query costs a source call now, zero later.
	warm := Query{Prefix: netaddr.MustParsePrefix("10.16.0.0/28")}
	if err := c.Warm(warm); err != nil {
		t.Fatal(err)
	}
	before := src.calls
	if _, err := c.Query(warm); err != nil {
		t.Fatal(err)
	}
	if src.calls != before {
		t.Fatal("warmed query still hit the source")
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 2 hits / 1 miss", st)
	}
	// Pagination bypasses the cache.
	if _, err := c.Query(Query{Port: 1003, PageToken: pageToken(tkey(3))}); err != nil {
		t.Fatal(err)
	}
	if src.calls != before+1 {
		t.Fatal("paginated query did not pass through")
	}
}

func TestCacheExpiryPurge(t *testing.T) {
	src, c := cacheFixture(t)
	inPort := Query{Port: 1003}
	otherPort := Query{Port: 1004}
	if _, err := c.Query(inPort); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query(otherPort); err != nil {
		t.Fatal(err)
	}
	// Expire a service on port 1003: only that query's entry purges.
	c.Apply(core.Event{Kind: core.EventServiceExpired, Key: tkey(3), Time: time.Unix(2000, 0)})
	if c.Len() != 1 {
		t.Fatalf("cache holds %d entries after purge, want 1", c.Len())
	}
	calls := src.calls
	if _, err := c.Query(otherPort); err != nil {
		t.Fatal(err)
	}
	if src.calls != calls {
		t.Fatal("unaffected entry was purged too")
	}
	if _, err := c.Query(inPort); err != nil {
		t.Fatal(err)
	}
	if src.calls != calls+1 {
		t.Fatal("purged entry did not refetch")
	}
	if st := c.Stats(); st.Invalidations != 1 {
		t.Fatalf("invalidations = %d, want 1", st.Invalidations)
	}
}

func TestCachePassiveFillPointLookup(t *testing.T) {
	src, c := cacheFixture(t)
	key := core.ServiceKey{Addr: netaddr.MustParseV4("10.99.0.1"), Proto: packet.ProtoTCP, Port: 8080}
	point := Query{Prefix: mustPrefix32(key.Addr), Port: key.Port, Proto: key.Proto}
	res, err := c.Query(point)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) != 0 {
		t.Fatal("service should not exist yet")
	}
	// A discovery event for exactly this key fills the entry in place —
	// the next read sees the service with zero round trips.
	at := time.Date(2006, 9, 20, 0, 0, 0, 0, time.UTC)
	c.Apply(core.Event{Kind: core.EventServiceDiscovered, Key: key, Provenance: core.PassiveOnly, Time: at})
	calls := src.calls
	res, err = c.Query(point)
	if err != nil {
		t.Fatal(err)
	}
	if src.calls != calls {
		t.Fatal("passive fill did not avoid the round trip")
	}
	if len(res.Hits) != 1 || res.Hits[0].Key != key || !res.Hits[0].Last.Equal(at) {
		t.Fatalf("passive-filled result = %+v", res.Hits)
	}
	if st := c.Stats(); st.PassiveFills != 1 {
		t.Fatalf("passive fills = %d, want 1", st.PassiveFills)
	}
	// A broader (non-point) query matching the key invalidates instead.
	broad := Query{Port: key.Port}
	if _, err := c.Query(broad); err != nil {
		t.Fatal(err)
	}
	c.Apply(core.Event{Kind: core.EventProvenanceUpgraded, Key: key, Provenance: core.PassiveFirst, Time: at.Add(time.Hour)})
	calls = src.calls
	if _, err := c.Query(broad); err != nil {
		t.Fatal(err)
	}
	if src.calls != calls+1 {
		t.Fatal("broad entry should have been invalidated by the upgrade event")
	}
}

func TestCacheCapacityEviction(t *testing.T) {
	src, _ := cacheFixture(t)
	c := NewCache(src, 4)
	for p := uint16(1000); p < 1008; p++ {
		if _, err := c.Query(Query{Port: p}); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() > 4 {
		t.Fatalf("cache grew to %d entries, cap 4", c.Len())
	}
	// Most recent queries survive.
	calls := src.calls
	if _, err := c.Query(Query{Port: 1007}); err != nil {
		t.Fatal(err)
	}
	if src.calls != calls {
		t.Fatal("most recent entry was evicted")
	}
}

func TestCacheInvalidateAll(t *testing.T) {
	_, c := cacheFixture(t)
	if _, err := c.Query(Query{Port: 1001}); err != nil {
		t.Fatal(err)
	}
	c.Invalidate()
	if c.Len() != 0 {
		t.Fatal("Invalidate left entries")
	}
}
