package query

import (
	"math/rand"
	"sort"
	"testing"

	"servdisc/internal/core"
	"servdisc/internal/netaddr"
	"servdisc/internal/packet"
)

func tkey(i int) core.ServiceKey {
	return core.ServiceKey{
		Addr:  netaddr.V4(0x0a100000 + uint32(i/8)),
		Proto: packet.ProtoTCP,
		Port:  uint16(1000 + i%8),
	}
}

// refModel is the sorted-slice reference the tree is checked against.
type refModel map[core.ServiceKey]keyEntry

func (m refModel) sortedKeys() []core.ServiceKey {
	keys := make([]core.ServiceKey, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].Before(keys[j]) })
	return keys
}

func treeKeys(t stree[keyEntry]) []core.ServiceKey {
	var out []core.ServiceKey
	t.each(func(e keyEntry) bool {
		out = append(out, e.skey())
		return true
	})
	return out
}

func checkTree(t *testing.T, tr stree[keyEntry], model refModel) {
	t.Helper()
	want := model.sortedKeys()
	got := treeKeys(tr)
	if len(got) != len(want) {
		t.Fatalf("tree has %d elements, model %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("iteration order diverges at %d: got %v want %v", i, got[i], want[i])
		}
	}
	if tr.len() != len(want) {
		t.Fatalf("len() = %d, want %d", tr.len(), len(want))
	}
	checkInvariants(t, tr.root)
}

func checkInvariants(t *testing.T, nd *snode[keyEntry]) (int, core.ServiceKey) {
	t.Helper()
	if nd == nil {
		return 0, core.ServiceKey{}
	}
	if nd.kids == nil {
		if len(nd.elems) == 0 || len(nd.elems) > leafMax {
			t.Fatalf("leaf arity %d out of bounds", len(nd.elems))
		}
		for i := 1; i < len(nd.elems); i++ {
			if !nd.elems[i-1].skey().Before(nd.elems[i].skey()) {
				t.Fatalf("leaf unsorted at %d", i)
			}
		}
		max := nd.elems[len(nd.elems)-1].skey()
		if nd.max != max || nd.n != len(nd.elems) {
			t.Fatalf("leaf metadata wrong: max=%v n=%d", nd.max, nd.n)
		}
		return nd.n, max
	}
	if len(nd.kids) == 0 || len(nd.kids) > innerMax {
		t.Fatalf("inner arity %d out of bounds", len(nd.kids))
	}
	n := 0
	var last core.ServiceKey
	for i, kid := range nd.kids {
		kn, kmax := checkInvariants(t, kid)
		n += kn
		if i > 0 && !last.Before(kmax) {
			t.Fatalf("kid max keys unsorted")
		}
		if kid.max != kmax {
			t.Fatalf("kid max mismatch")
		}
		last = kmax
	}
	if nd.n != n || nd.max != last {
		t.Fatalf("inner metadata wrong: n=%d (sum %d)", nd.n, n)
	}
	return n, last
}

// Random batched upserts and deletes against a map reference: iteration
// order, membership, counts and structural invariants all hold at every
// step, and earlier tree values are unaffected by later patches.
func TestStreeModel(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	model := refModel{}
	tr := stree[keyEntry]{}
	type gen struct {
		tr   stree[keyEntry]
		keys []core.ServiceKey
	}
	var history []gen
	const universe = 4000
	for step := 0; step < 60; step++ {
		nAdd, nDel := rng.Intn(300), rng.Intn(200)
		addSet := map[core.ServiceKey]keyEntry{}
		for i := 0; i < nAdd; i++ {
			k := tkey(rng.Intn(universe))
			addSet[k] = keyEntry(k)
		}
		delSet := map[core.ServiceKey]bool{}
		for i := 0; i < nDel; i++ {
			k := tkey(rng.Intn(universe))
			if _, adding := addSet[k]; !adding {
				delSet[k] = true
			}
		}
		adds := make([]keyEntry, 0, len(addSet))
		for _, e := range addSet {
			adds = append(adds, e)
		}
		sort.Slice(adds, func(i, j int) bool { return adds[i].skey().Before(adds[j].skey()) })
		dels := make([]core.ServiceKey, 0, len(delSet))
		for k := range delSet {
			dels = append(dels, k)
		}
		sort.Slice(dels, func(i, j int) bool { return dels[i].Before(dels[j]) })

		tr = tr.patch(adds, dels)
		for k, e := range addSet {
			model[k] = e
		}
		for k := range delSet {
			delete(model, k)
		}
		checkTree(t, tr, model)
		for _, k := range model.sortedKeys() {
			if _, ok := tr.get(k); !ok {
				t.Fatalf("get(%v) missing", k)
			}
		}
		if _, ok := tr.get(tkey(universe + 1)); ok {
			t.Fatal("get of absent key succeeded")
		}
		history = append(history, gen{tr: tr, keys: model.sortedKeys()})
	}
	// Persistence: every historical tree still iterates its own key set.
	for i, g := range history {
		got := treeKeys(g.tr)
		if len(got) != len(g.keys) {
			t.Fatalf("generation %d mutated: %d keys, want %d", i, len(got), len(g.keys))
		}
		for j := range got {
			if got[j] != g.keys[j] {
				t.Fatalf("generation %d mutated at %d", i, j)
			}
		}
	}
}

// seek must land on the first element strictly after the probe, including
// probes between elements, before the first, at the last, and past the end.
func TestStreeSeek(t *testing.T) {
	tr := stree[keyEntry]{}
	var adds []keyEntry
	for i := 0; i < 1000; i++ {
		adds = append(adds, keyEntry(tkey(i*2))) // even positions only
	}
	sort.Slice(adds, func(i, j int) bool { return adds[i].skey().Before(adds[j].skey()) })
	tr = tr.patch(adds, nil)
	all := treeKeys(tr)

	c := tr.seek(nil)
	if e, ok := c.next(); !ok || e.skey() != all[0] {
		t.Fatalf("seek(nil) = %v, want first element", e)
	}
	for _, idx := range []int{0, 1, 17, 500, 998, 999} {
		after := all[idx]
		c := tr.seek(&after)
		e, ok := c.next()
		if idx == len(all)-1 {
			if ok {
				t.Fatalf("seek after last returned %v", e)
			}
			continue
		}
		if !ok || e.skey() != all[idx+1] {
			t.Fatalf("seek(after=%v) = %v, want %v", after, e.skey(), all[idx+1])
		}
	}
	// Probe between elements: any odd key sits between two stored evens.
	between := tkey(2*17 + 1)
	c = tr.seek(&between)
	e, ok := c.next()
	if !ok {
		t.Fatal("seek between elements hit end")
	}
	if !between.Before(e.skey()) {
		t.Fatalf("seek landed at %v, not after %v", e.skey(), between)
	}
}

// A full drain via patch(nil, allKeys) must return the empty tree, and
// patching the empty tree works.
func TestStreeDrainAndRefill(t *testing.T) {
	var adds []keyEntry
	for i := 0; i < 500; i++ {
		adds = append(adds, keyEntry(tkey(i)))
	}
	sort.Slice(adds, func(i, j int) bool { return adds[i].skey().Before(adds[j].skey()) })
	tr := stree[keyEntry]{}.patch(adds, nil)
	keys := treeKeys(tr)
	tr2 := tr.patch(nil, keys)
	if tr2.len() != 0 || tr2.root != nil {
		t.Fatalf("drained tree not empty: len=%d", tr2.len())
	}
	if tr.len() != 500 {
		t.Fatal("drain mutated the source tree")
	}
	tr3 := tr2.patch(adds[:10], nil)
	if tr3.len() != 10 {
		t.Fatalf("refill len = %d", tr3.len())
	}
}
