package query

import (
	"sync"

	"servdisc/internal/core"
)

// Source answers queries — an Epoch-backed catalog, a remote /query
// endpoint, anything. The Cache wraps one.
type Source interface {
	Query(q Query) (Result, error)
}

// SourceFunc adapts a function to the Source interface.
type SourceFunc func(q Query) (Result, error)

func (f SourceFunc) Query(q Query) (Result, error) { return f(q) }

// CacheStats counts cache traffic.
type CacheStats struct {
	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
	Invalidations int64 `json:"invalidations"`
	PassiveFills  int64 `json:"passive_fills"`
}

// Cache is the client-side query cache, after the WebGrid discovery
// design: results fill on demand from the source, *passively* from the
// subscription event stream (a discovery event updates cached pages it
// belongs to without a round trip), preemptively via Warm at startup, and
// stale entries purge when EventServiceExpired withdraws a service. A
// client polling the same dashboards therefore converges to zero
// round trips: events keep its entries live.
//
// Coherence contract: entries are as fresh as the event stream feeding
// Apply. A dropped event can leave an entry stale until Invalidate or the
// next miss; consumers needing stronger guarantees size their
// subscription buffer or bypass the cache.
type Cache struct {
	src Source

	mu       sync.Mutex
	entries  map[string]*cacheEntry
	cap      int
	lruClock int64
	stats    CacheStats
}

// cacheEntry is one cached first page (pagination bypasses the cache:
// cursors beyond page one are cheap to serve and poor to share).
type cacheEntry struct {
	q   Query
	res Result
	// lru is a coarse recency stamp for capacity eviction.
	lru int64
}

// DefaultCacheCap bounds the number of distinct cached queries.
const DefaultCacheCap = 1024

// NewCache wraps a source. cap <= 0 uses DefaultCacheCap.
func NewCache(src Source, cap int) *Cache {
	if cap <= 0 {
		cap = DefaultCacheCap
	}
	return &Cache{src: src, entries: make(map[string]*cacheEntry), cap: cap}
}

// Query answers from the cache when it can. Only first pages (empty
// PageToken) are cached; paginated follow-ups pass through.
func (c *Cache) Query(q Query) (Result, error) {
	if q.PageToken != "" {
		return c.src.Query(q)
	}
	key := q.CacheKey()
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.stats.Hits++
		e.lru = c.tick()
		res := e.res
		c.mu.Unlock()
		return res, nil
	}
	c.stats.Misses++
	c.mu.Unlock()

	res, err := c.src.Query(q)
	if err != nil {
		return res, err
	}
	c.mu.Lock()
	c.store(key, q, res)
	c.mu.Unlock()
	return res, nil
}

// Warm preemptively fills the cache — the startup prefetch of the queries
// a client knows it will serve. Errors abort the warm and are returned.
func (c *Cache) Warm(queries ...Query) error {
	for _, q := range queries {
		q.PageToken = ""
		res, err := c.src.Query(q)
		if err != nil {
			return err
		}
		c.mu.Lock()
		c.store(q.CacheKey(), q, res)
		c.mu.Unlock()
	}
	return nil
}

// store inserts under c.mu, evicting the least-recent entry over cap.
func (c *Cache) store(key string, q Query, res Result) {
	if len(c.entries) >= c.cap {
		var worstKey string
		var worst int64 = 1<<63 - 1
		for k, e := range c.entries {
			if e.lru < worst {
				worst, worstKey = e.lru, k
			}
		}
		delete(c.entries, worstKey)
	}
	c.entries[key] = &cacheEntry{q: q, res: res, lru: c.tick()}
}

// tick advances the recency clock (caller holds c.mu).
func (c *Cache) tick() int64 {
	c.lruClock++
	return c.lruClock
}

// Apply folds one subscription event into the cache:
//
//   - EventServiceExpired purges every cached result the key belongs to
//     (the stale-entry purge keyed off expiry events).
//   - EventServiceDiscovered / EventProvenanceUpgraded passively refresh:
//     results whose query matches the new service are invalidated so the
//     next read refetches them fresh — except exact-key point lookups,
//     which are patched in place (the passive fill) with the event's
//     provenance, no round trip.
//
// Feed it every event from a SubscribeFiltered stream; unrelated events
// are ignored in O(cached queries).
func (c *Cache) Apply(ev core.Event) {
	switch ev.Kind {
	case core.EventServiceExpired, core.EventServiceDiscovered, core.EventProvenanceUpgraded:
	default:
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for key, e := range c.entries {
		if !c.queryCovers(&e.q, ev.Key) {
			continue
		}
		if ev.Kind != core.EventServiceExpired && c.passiveFill(e, ev) {
			c.stats.PassiveFills++
			continue
		}
		delete(c.entries, key)
		c.stats.Invalidations++
	}
}

// queryCovers reports whether a key could appear in the query's results
// (freshness deliberately ignored: an event about the key can change its
// freshness, so the entry is affected either way).
func (c *Cache) queryCovers(q *Query, k core.ServiceKey) bool {
	if q.Port != 0 && k.Port != q.Port {
		return false
	}
	if q.Proto != 0 && k.Proto != q.Proto {
		return false
	}
	if q.Category != CatAny && CategoryOf(k) != q.Category {
		return false
	}
	if q.Prefix.Bits() != 0 && !q.Prefix.Contains(k.Addr) {
		return false
	}
	return true
}

// passiveFill patches a point-lookup entry in place from a discovery /
// upgrade event. Only exact-key queries (a /32 prefix plus port) are
// safely patchable: the event carries enough to rebuild their single hit.
func (c *Cache) passiveFill(e *cacheEntry, ev core.Event) bool {
	if e.q.Prefix.Bits() != 32 || e.q.Port == 0 {
		return false
	}
	if e.q.HasProvenance && ev.Provenance != e.q.Provenance {
		return false // class moved out of (or was never in) this query
	}
	if !e.q.MinFreshness.IsZero() && ev.Time.Before(e.q.MinFreshness) {
		return false
	}
	d := Doc{Key: ev.Key, Prov: ev.Provenance, First: ev.Time, Last: ev.Time}
	if len(e.res.Hits) == 1 && e.res.Hits[0].Key == ev.Key {
		old := e.res.Hits[0]
		if old.First.Before(d.First) {
			d.First = old.First
		}
		if d.Last.Before(old.Last) {
			d.Last = old.Last
		}
		d.Flows, d.Clients = old.Flows, old.Clients
	}
	e.res = Result{Hits: []Doc{d}, Epoch: e.res.Epoch, Total: e.res.Total}
	return true
}

// Invalidate drops every cached entry (e.g. on reconnect, when the event
// stream may have gapped).
func (c *Cache) Invalidate() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.Invalidations += int64(len(c.entries))
	c.entries = make(map[string]*cacheEntry)
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Len returns the number of cached queries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
