package query

import (
	"sort"
	"sync/atomic"
	"time"

	"servdisc/internal/core"
	"servdisc/internal/netaddr"
	"servdisc/internal/packet"
)

// Doc is one service as the query layer sees it: the key, its provenance
// class, discovery and freshness times, and the passive weights. Docs are
// plain values — an epoch holds millions of them in a persistent tree and
// hands them out by value, so queries never touch (or pin) engine state.
type Doc struct {
	Key   core.ServiceKey `json:"key"`
	Prov  core.Provenance `json:"prov"`
	First time.Time       `json:"first_seen"`
	// Last is the newest positive evidence — the freshness axis. For
	// active-only services (no passive record) it is the first probe
	// answer, the only per-key time the active side retains.
	Last    time.Time `json:"last_seen"`
	Flows   int       `json:"flows,omitempty"`
	Clients int       `json:"clients,omitempty"`
}

func (d Doc) skey() core.ServiceKey { return d.Key }

// equal compares docs without time.Time's monotonic-clock noise.
func (d Doc) equal(o Doc) bool {
	return d.Key == o.Key && d.Prov == o.Prov && d.Flows == o.Flows && d.Clients == o.Clients &&
		d.First.Equal(o.First) && d.Last.Equal(o.Last)
}

// DocFromInventory builds the query doc for one inventory key.
func DocFromInventory(inv *core.Inventory, k core.ServiceKey) Doc {
	d := Doc{Key: k}
	d.Prov, _ = inv.Provenance(k)
	d.First, _ = inv.FirstDiscovered(k)
	if rec, ok := inv.Record(k); ok {
		d.Last = rec.LastSeen
		d.Flows = rec.Flows
		d.Clients = rec.Clients()
	} else if at, ok := inv.ActiveFirstOpen(k); ok {
		d.Last = at
	}
	return d
}

// Category buckets services by application class, derived from the
// well-known port (the paper's service axis: its datasets select FTP,
// SSH, HTTP, HTTPS and MySQL, plus the UDP services passive monitoring
// watches).
type Category uint8

// Category classes. CatAny is the query wildcard, never stored.
const (
	CatAny Category = iota
	CatWeb
	CatSSH
	CatFTP
	CatMail
	CatDNS
	CatDB
	CatNameSvc
	CatOther
)

var categoryNames = [...]string{
	CatAny:     "any",
	CatWeb:     "web",
	CatSSH:     "ssh",
	CatFTP:     "ftp",
	CatMail:    "mail",
	CatDNS:     "dns",
	CatDB:      "db",
	CatNameSvc: "namesvc",
	CatOther:   "other",
}

func (c Category) String() string {
	if int(c) < len(categoryNames) {
		return categoryNames[c]
	}
	return "other"
}

// ParseCategory parses the names String renders; unknown names are CatAny
// with ok=false.
func ParseCategory(s string) (Category, bool) {
	for i, name := range categoryNames {
		if s == name {
			return Category(i), true
		}
	}
	return CatAny, false
}

// CategoryOf classifies a service key.
func CategoryOf(k core.ServiceKey) Category {
	switch k.Port {
	case 80, 443, 8080, 8443:
		return CatWeb
	case 22:
		return CatSSH
	case 20, 21:
		return CatFTP
	case 25, 110, 143, 465, 587, 993, 995:
		return CatMail
	case 53:
		return CatDNS
	case 3306, 5432, 1433, 6379, 11211, 27017:
		return CatDB
	case 111, 137, 138, 139, 389, 445:
		return CatNameSvc
	}
	if k.Proto == packet.ProtoUDP && (k.Port == 5353 || k.Port == 1900) {
		return CatNameSvc
	}
	return CatOther
}

// prefixBucket is the /24 an address belongs to — the granularity the
// subnet dimension indexes at. Prefix queries wider than /24 walk a run
// of buckets (address-ordered, so concatenation is canonical order);
// narrower ones post-filter a single bucket.
func prefixBucket(a netaddr.V4) netaddr.V4 { return a &^ 0xff }

// DefaultFreshnessBucket is the width of the freshness-dimension buckets
// when the catalog is built with no explicit width.
const DefaultFreshnessBucket = time.Hour

// provClasses is the size of the provenance dimension.
const provClasses = 4

// Epoch is one immutable index generation: the doc tree plus every
// secondary dimension, all persistent structures sharing state with the
// previous epoch. Readers navigate an epoch lock-free; it never changes
// after publication.
type Epoch struct {
	gen        uint64
	freshWidth time.Duration
	docs       stree[Doc]
	byPort     map[uint16]stree[keyEntry]
	byPrefix   map[netaddr.V4]stree[keyEntry] // /24 bucket base → keys
	pfxBases   []netaddr.V4                   // sorted bucket bases
	byProv     [provClasses]stree[keyEntry]
	byCat      map[Category]stree[keyEntry]
	byFresh    map[int64]stree[keyEntry] // Last truncated to freshWidth → keys
	freshBases []int64                   // sorted bucket ids
}

// Gen returns the epoch's generation counter (0 = empty initial epoch).
func (e *Epoch) Gen() uint64 { return e.gen }

// Len returns the number of indexed services.
func (e *Epoch) Len() int { return e.docs.len() }

// Doc returns the indexed doc for one key.
func (e *Epoch) Doc(k core.ServiceKey) (Doc, bool) { return e.docs.get(k) }

func (e *Epoch) freshBucket(t time.Time) int64 {
	w := int64(e.freshWidth)
	n := t.UnixNano()
	b := n / w
	if n < 0 && n%w != 0 {
		b--
	}
	return b
}

// Catalog owns the epoch chain: Patch and Rebuild install new epochs
// (caller-serialized — in the engine they run under the snapshot lock),
// while any number of concurrent readers load the current epoch through
// one atomic pointer.
type Catalog struct {
	cur        atomic.Pointer[Epoch]
	freshWidth time.Duration
}

// NewCatalog builds an empty catalog. freshWidth sets the freshness
// bucket granularity (DefaultFreshnessBucket when <= 0).
func NewCatalog(freshWidth time.Duration) *Catalog {
	if freshWidth <= 0 {
		freshWidth = DefaultFreshnessBucket
	}
	c := &Catalog{freshWidth: freshWidth}
	c.cur.Store(c.emptyEpoch())
	return c
}

func (c *Catalog) emptyEpoch() *Epoch {
	return &Epoch{
		freshWidth: c.freshWidth,
		byPort:     map[uint16]stree[keyEntry]{},
		byPrefix:   map[netaddr.V4]stree[keyEntry]{},
		byCat:      map[Category]stree[keyEntry]{},
		byFresh:    map[int64]stree[keyEntry]{},
	}
}

// Epoch returns the current index epoch — an immutable value, safe to
// read for as long as the caller likes regardless of later patches.
func (c *Catalog) Epoch() *Epoch { return c.cur.Load() }

// Len returns the current epoch's service count.
func (c *Catalog) Len() int { return c.Epoch().Len() }

// dimDelta accumulates one dimension's bucket-level add/del key lists.
// Lists are re-sorted at apply time: a bucket's deletions interleave keys
// from the upsert loop (bucket migrations) and the remove loop, so append
// order is not globally sorted.
type dimDelta[B comparable] struct {
	adds map[B][]keyEntry
	dels map[B][]core.ServiceKey
}

func (d *dimDelta[B]) add(b B, k core.ServiceKey) {
	if d.adds == nil {
		d.adds = map[B][]keyEntry{}
	}
	d.adds[b] = append(d.adds[b], keyEntry(k))
}

func (d *dimDelta[B]) del(b B, k core.ServiceKey) {
	if d.dels == nil {
		d.dels = map[B][]core.ServiceKey{}
	}
	d.dels[b] = append(d.dels[b], k)
}

// apply patches one dimension's bucket map, cloning it only when at least
// one bucket changed. Returns the (possibly shared) new map and whether
// the set of buckets changed.
func (d *dimDelta[B]) apply(prev map[B]stree[keyEntry]) (map[B]stree[keyEntry], bool) {
	if d.adds == nil && d.dels == nil {
		return prev, false
	}
	next := make(map[B]stree[keyEntry], len(prev)+len(d.adds))
	for b, t := range prev {
		next[b] = t
	}
	basesChanged := false
	touched := map[B]bool{}
	for b := range d.adds {
		touched[b] = true
	}
	for b := range d.dels {
		touched[b] = true
	}
	for b := range touched {
		before, existed := next[b]
		after := before.patch(sortEntries(d.adds[b]), sortKeys(d.dels[b]))
		if after.len() == 0 {
			if existed {
				delete(next, b)
				basesChanged = true
			}
			continue
		}
		if !existed {
			basesChanged = true
		}
		next[b] = after
	}
	return next, basesChanged
}

// Patch advances the catalog one epoch: upserts (sorted by key,
// duplicate-free) replace or insert docs, removes (sorted, disjoint from
// upserts) delete them. Cost is O(changes · log n) — the persistent trees
// path-copy only what moved, and the dimension maps are cloned at bucket
// granularity. No-op patches (every upsert equal to the stored doc) keep
// the current epoch.
func (c *Catalog) Patch(upserts []Doc, removes []core.ServiceKey) {
	prev := c.Epoch()
	var docAdds []Doc
	var docDels []core.ServiceKey
	var port dimDelta[uint16]
	var pfx dimDelta[netaddr.V4]
	var cat dimDelta[Category]
	var fresh dimDelta[int64]
	var provAdds [provClasses][]keyEntry
	var provDels [provClasses][]core.ServiceKey

	for _, d := range upserts {
		old, had := prev.docs.get(d.Key)
		if had && old.equal(d) {
			continue
		}
		docAdds = append(docAdds, d)
		if had {
			// Key-derived dimensions (port, prefix, category) cannot move;
			// provenance and freshness can.
			if old.Prov != d.Prov {
				provDels[old.Prov%provClasses] = append(provDels[old.Prov%provClasses], d.Key)
				provAdds[d.Prov%provClasses] = append(provAdds[d.Prov%provClasses], keyEntry(d.Key))
			}
			if ob, nb := prev.freshBucket(old.Last), prev.freshBucket(d.Last); ob != nb {
				fresh.del(ob, d.Key)
				fresh.add(nb, d.Key)
			}
			continue
		}
		port.add(d.Key.Port, d.Key)
		pfx.add(prefixBucket(d.Key.Addr), d.Key)
		cat.add(CategoryOf(d.Key), d.Key)
		provAdds[d.Prov%provClasses] = append(provAdds[d.Prov%provClasses], keyEntry(d.Key))
		fresh.add(prev.freshBucket(d.Last), d.Key)
	}
	for _, k := range removes {
		old, had := prev.docs.get(k)
		if !had {
			continue
		}
		docDels = append(docDels, k)
		port.del(k.Port, k)
		pfx.del(prefixBucket(k.Addr), k)
		cat.del(CategoryOf(k), k)
		provDels[old.Prov%provClasses] = append(provDels[old.Prov%provClasses], k)
		fresh.del(prev.freshBucket(old.Last), k)
	}
	if len(docAdds) == 0 && len(docDels) == 0 {
		return
	}

	next := &Epoch{
		gen:        prev.gen + 1,
		freshWidth: prev.freshWidth,
		docs:       prev.docs.patch(docAdds, docDels),
		byProv:     prev.byProv,
		pfxBases:   prev.pfxBases,
		freshBases: prev.freshBases,
	}
	for p := 0; p < provClasses; p++ {
		next.byProv[p] = next.byProv[p].patch(sortEntries(provAdds[p]), sortKeys(provDels[p]))
	}
	var pfxMoved, freshMoved bool
	next.byPort, _ = port.apply(prev.byPort)
	next.byCat, _ = cat.apply(prev.byCat)
	next.byPrefix, pfxMoved = pfx.apply(prev.byPrefix)
	next.byFresh, freshMoved = fresh.apply(prev.byFresh)
	if pfxMoved {
		next.pfxBases = sortedBases(next.byPrefix, func(a, b netaddr.V4) bool { return a < b })
	}
	if freshMoved {
		next.freshBases = sortedBases(next.byFresh, func(a, b int64) bool { return a < b })
	}
	c.cur.Store(next)
}

// Rebuild replaces the whole index from an inventory-ordered doc list
// (sorted by key) — the full-resync path for lineage breaks, startup
// warms, and aggregator bootstraps. O(n log n); Patch is the steady state.
func (c *Catalog) Rebuild(docs []Doc) {
	prevGen := c.Epoch().gen
	next := c.emptyEpoch()
	next.gen = prevGen + 1
	next.docs = stree[Doc]{}.patch(docs, nil)
	perPort := map[uint16][]keyEntry{}
	perPfx := map[netaddr.V4][]keyEntry{}
	perCat := map[Category][]keyEntry{}
	perFresh := map[int64][]keyEntry{}
	var perProv [provClasses][]keyEntry
	for _, d := range docs {
		k := keyEntry(d.Key)
		perPort[d.Key.Port] = append(perPort[d.Key.Port], k)
		perPfx[prefixBucket(d.Key.Addr)] = append(perPfx[prefixBucket(d.Key.Addr)], k)
		perCat[CategoryOf(d.Key)] = append(perCat[CategoryOf(d.Key)], k)
		perProv[d.Prov%provClasses] = append(perProv[d.Prov%provClasses], k)
		b := next.freshBucket(d.Last)
		perFresh[b] = append(perFresh[b], k)
	}
	for p, ks := range perPort {
		next.byPort[p] = stree[keyEntry]{}.patch(ks, nil)
	}
	for b, ks := range perPfx {
		next.byPrefix[b] = stree[keyEntry]{}.patch(ks, nil)
	}
	for ct, ks := range perCat {
		next.byCat[ct] = stree[keyEntry]{}.patch(ks, nil)
	}
	for i, ks := range perProv {
		next.byProv[i] = stree[keyEntry]{}.patch(ks, nil)
	}
	for b, ks := range perFresh {
		next.byFresh[b] = stree[keyEntry]{}.patch(ks, nil)
	}
	next.pfxBases = sortedBases(next.byPrefix, func(a, b netaddr.V4) bool { return a < b })
	next.freshBases = sortedBases(next.byFresh, func(a, b int64) bool { return a < b })
	c.cur.Store(next)
}

// RebuildFromInventory is Rebuild fed straight from a frozen inventory.
func (c *Catalog) RebuildFromInventory(inv *core.Inventory) {
	keys := inv.Keys()
	docs := make([]Doc, len(keys))
	for i, k := range keys {
		docs[i] = DocFromInventory(inv, k)
	}
	c.Rebuild(docs)
}

// ApplyDelta folds one snapshot transition into the index: an O(churn)
// patch when the engine produced a delta, a full rebuild when it could
// not (delta.Full). This is the OnSnapshot observer body; prev/inv are
// the transition's inventories as the engine reported them.
func (c *Catalog) ApplyDelta(inv *core.Inventory, delta core.SnapshotDelta) {
	if delta.Full {
		c.RebuildFromInventory(inv)
		return
	}
	n := len(delta.Added) + len(delta.Updated)
	if n == 0 && len(delta.Removed) == 0 {
		return
	}
	ups := make([]Doc, 0, n)
	for _, k := range mergeSorted(delta.Added, delta.Updated) {
		ups = append(ups, DocFromInventory(inv, k))
	}
	c.Patch(ups, delta.Removed)
}

// mergeSorted unions two sorted key slices, deduplicating.
func mergeSorted(a, b []core.ServiceKey) []core.ServiceKey {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make([]core.ServiceKey, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].Before(b[j]):
			out = append(out, a[i])
			i++
		case b[j].Before(a[i]):
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i, j = i+1, j+1
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

func sortEntries(es []keyEntry) []keyEntry {
	sort.Slice(es, func(i, j int) bool { return es[i].skey().Before(es[j].skey()) })
	return es
}

func sortKeys(ks []core.ServiceKey) []core.ServiceKey {
	sort.Slice(ks, func(i, j int) bool { return ks[i].Before(ks[j]) })
	return ks
}

func sortedBases[B comparable](m map[B]stree[keyEntry], less func(a, b B) bool) []B {
	out := make([]B, 0, len(m))
	for b := range m {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return less(out[i], out[j]) })
	return out
}
