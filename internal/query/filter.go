package query

import (
	"fmt"
	"net/url"
	"strconv"
	"strings"

	"servdisc/internal/core"
	"servdisc/internal/netaddr"
	"servdisc/internal/packet"
)

// Filter is a predicate over the discovery event stream — the push-down
// form handed to SubscribeFiltered so a narrow consumer neither receives
// nor pays drop budget for events outside its slice. Zero-valued fields
// are wildcards; set fields are conjunctive.
type Filter struct {
	// Kinds restricts to the listed event kinds (empty = all).
	Kinds []core.EventKind
	// Port / Proto / Prefix restrict service events by their key. Events
	// without a service key (scan completions) fail these predicates;
	// scanner detections match Prefix against the scanner source instead.
	Port   uint16
	Proto  packet.IPProtocol
	Prefix netaddr.Prefix
	// Provenance restricts service events by class when HasProvenance is
	// set.
	Provenance    core.Provenance
	HasProvenance bool
}

// Zero reports whether the filter passes everything.
func (f *Filter) Zero() bool {
	return len(f.Kinds) == 0 && f.Port == 0 && f.Proto == 0 && f.Prefix.Bits() == 0 && !f.HasProvenance
}

// Match applies the filter to one event.
func (f *Filter) Match(ev core.Event) bool {
	if len(f.Kinds) > 0 {
		ok := false
		for _, k := range f.Kinds {
			if ev.Kind == k {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	keyed := ev.Kind == core.EventServiceDiscovered || ev.Kind == core.EventProvenanceUpgraded || ev.Kind == core.EventServiceExpired
	if f.Port != 0 && (!keyed || ev.Key.Port != f.Port) {
		return false
	}
	if f.Proto != 0 && (!keyed || ev.Key.Proto != f.Proto) {
		return false
	}
	if f.Prefix.Bits() != 0 {
		switch {
		case keyed:
			if !f.Prefix.Contains(ev.Key.Addr) {
				return false
			}
		case ev.Kind == core.EventScannerDetected:
			if !f.Prefix.Contains(ev.Scanner.Source) {
				return false
			}
		default:
			return false
		}
	}
	if f.HasProvenance && (!keyed || ev.Provenance != f.Provenance) {
		return false
	}
	return true
}

// Keep returns the push-down predicate, nil for a pass-everything filter
// (so the hub skips predicate evaluation entirely).
func (f Filter) Keep() func(core.Event) bool {
	if f.Zero() {
		return nil
	}
	return f.Match
}

// ParseEventFilter builds a Filter from URL parameters — the
// /events?filter contract:
//
//	kind=service-discovered,service-expired port=443 proto=tcp
//	prefix=10.16.0.0/16 prov=passive-only
//
// plus the combined filter=port:443,prefix:10.16.0.0/16 shorthand.
func ParseEventFilter(values url.Values) (Filter, error) {
	var f Filter
	set := func(key, val string) error {
		switch key {
		case "kind":
			var k core.EventKind
			if err := k.UnmarshalText([]byte(val)); err != nil {
				return err
			}
			f.Kinds = append(f.Kinds, k)
		case "port":
			p, err := strconv.ParseUint(val, 10, 16)
			if err != nil || p == 0 {
				return fmt.Errorf("bad port %q", val)
			}
			f.Port = uint16(p)
		case "proto":
			return f.Proto.UnmarshalText([]byte(val))
		case "prefix":
			p, err := netaddr.ParsePrefix(val)
			if err != nil {
				return err
			}
			f.Prefix = p
		case "prov":
			if err := f.Provenance.UnmarshalText([]byte(val)); err != nil {
				return err
			}
			f.HasProvenance = true
		default:
			return fmt.Errorf("unknown filter key %q", key)
		}
		return nil
	}
	for _, key := range []string{"kind", "port", "proto", "prefix", "prov"} {
		for _, val := range values[key] {
			for _, v := range strings.Split(val, ",") {
				if v == "" {
					continue
				}
				if err := set(key, v); err != nil {
					return f, err
				}
			}
		}
	}
	for _, spec := range values["filter"] {
		for _, clause := range strings.Split(spec, ",") {
			if clause == "" {
				continue
			}
			key, val, ok := strings.Cut(clause, ":")
			if !ok {
				return f, fmt.Errorf("bad filter clause %q (want key:value)", clause)
			}
			if err := set(key, val); err != nil {
				return f, err
			}
		}
	}
	return f, nil
}
