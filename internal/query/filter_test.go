package query

import (
	"net/url"
	"testing"
	"time"

	"servdisc/internal/core"
	"servdisc/internal/netaddr"
	"servdisc/internal/packet"
)

func svcEvent(kind core.EventKind, key core.ServiceKey, prov core.Provenance) core.Event {
	return core.Event{Kind: kind, Key: key, Provenance: prov, Time: time.Unix(1000, 0)}
}

func TestFilterMatch(t *testing.T) {
	web := core.ServiceKey{Addr: netaddr.MustParseV4("10.16.0.9"), Proto: packet.ProtoTCP, Port: 443}
	ssh := core.ServiceKey{Addr: netaddr.MustParseV4("10.17.0.9"), Proto: packet.ProtoTCP, Port: 22}
	cases := []struct {
		name string
		f    Filter
		ev   core.Event
		want bool
	}{
		{"zero passes all", Filter{}, svcEvent(core.EventServiceDiscovered, web, core.PassiveOnly), true},
		{"port match", Filter{Port: 443}, svcEvent(core.EventServiceDiscovered, web, core.PassiveOnly), true},
		{"port mismatch", Filter{Port: 443}, svcEvent(core.EventServiceDiscovered, ssh, core.PassiveOnly), false},
		{"port excludes keyless", Filter{Port: 443}, core.Event{Kind: core.EventScanCompleted}, false},
		{"kind match", Filter{Kinds: []core.EventKind{core.EventServiceExpired}}, svcEvent(core.EventServiceExpired, web, core.PassiveOnly), true},
		{"kind mismatch", Filter{Kinds: []core.EventKind{core.EventServiceExpired}}, svcEvent(core.EventServiceDiscovered, web, core.PassiveOnly), false},
		{"prefix match", Filter{Prefix: netaddr.MustParsePrefix("10.16.0.0/16")}, svcEvent(core.EventServiceDiscovered, web, core.PassiveOnly), true},
		{"prefix mismatch", Filter{Prefix: netaddr.MustParsePrefix("10.16.0.0/16")}, svcEvent(core.EventServiceDiscovered, ssh, core.PassiveOnly), false},
		{"prefix matches scanner source", Filter{Prefix: netaddr.MustParsePrefix("10.16.0.0/16")},
			core.Event{Kind: core.EventScannerDetected, Scanner: core.ScannerInfo{Source: netaddr.MustParseV4("10.16.3.3")}}, true},
		{"prov match", Filter{Provenance: core.ActiveOnly, HasProvenance: true}, svcEvent(core.EventServiceDiscovered, web, core.ActiveOnly), true},
		{"prov mismatch", Filter{Provenance: core.ActiveOnly, HasProvenance: true}, svcEvent(core.EventServiceDiscovered, web, core.PassiveOnly), false},
	}
	for _, tc := range cases {
		if got := tc.f.Match(tc.ev); got != tc.want {
			t.Errorf("%s: Match = %v, want %v", tc.name, got, tc.want)
		}
	}
	if (Filter{}).Keep() != nil {
		t.Error("zero filter must push down nil (no per-event predicate cost)")
	}
	if (Filter{Port: 1}).Keep() == nil {
		t.Error("non-zero filter lost its predicate")
	}
}

func TestParseEventFilter(t *testing.T) {
	v, _ := url.ParseQuery("filter=port:443,prefix:10.16.0.0/16&kind=service-discovered,service-expired")
	f, err := ParseEventFilter(v)
	if err != nil {
		t.Fatal(err)
	}
	if f.Port != 443 || f.Prefix.String() != "10.16.0.0/16" || len(f.Kinds) != 2 {
		t.Fatalf("parsed %+v", f)
	}
	v, _ = url.ParseQuery("prov=active-only&proto=tcp")
	f, err = ParseEventFilter(v)
	if err != nil {
		t.Fatal(err)
	}
	if !f.HasProvenance || f.Provenance != core.ActiveOnly || f.Proto != packet.ProtoTCP {
		t.Fatalf("parsed %+v", f)
	}
	for _, bad := range []string{"filter=port", "port=0", "port=x", "kind=bogus", "prefix=zzz", "filter=what:4"} {
		v, _ := url.ParseQuery(bad)
		if _, err := ParseEventFilter(v); err == nil {
			t.Errorf("ParseEventFilter(%q) accepted", bad)
		}
	}
}

func TestParseHTTPQuery(t *testing.T) {
	v, _ := url.ParseQuery("port=443&proto=tcp&prefix=10.16.0.0/24&prov=passive-first&since=2006-09-19T10:00:00Z&limit=5")
	q, err := ParseHTTP(v)
	if err != nil {
		t.Fatal(err)
	}
	if q.Port != 443 || q.Proto != packet.ProtoTCP || q.Prefix.String() != "10.16.0.0/24" ||
		!q.HasProvenance || q.Provenance != core.PassiveFirst || q.Limit != 5 ||
		!q.MinFreshness.Equal(time.Date(2006, 9, 19, 10, 0, 0, 0, time.UTC)) {
		t.Fatalf("parsed %+v", q)
	}
	v, _ = url.ParseQuery("key=10.16.0.9:443/tcp")
	q, err = ParseHTTP(v)
	if err != nil {
		t.Fatal(err)
	}
	if q.Prefix.Bits() != 32 || q.Port != 443 || q.Proto != packet.ProtoTCP {
		t.Fatalf("key shorthand parsed %+v", q)
	}
	for _, bad := range []string{"port=abc", "limit=-1", "since=yesterday", "category=zzz", "key=1.2.3.4"} {
		v, _ := url.ParseQuery(bad)
		if _, err := ParseHTTP(v); err == nil {
			t.Errorf("ParseHTTP(%q) accepted", bad)
		}
	}
}
