module servdisc

go 1.24
