package servdisc

import (
	"bytes"
	"context"
	"testing"
	"time"

	"servdisc/internal/campus"
	"servdisc/internal/capture"
	"servdisc/internal/core"
	"servdisc/internal/netaddr"
	"servdisc/internal/probe"
	"servdisc/internal/sim"
	"servdisc/internal/trace"
	"servdisc/internal/traffic"
)

// buildCampus wires a network + engine for a config.
func buildCampus(t testing.TB, cfg campus.Config) (*campus.Network, *sim.Engine, netaddr.Prefix) {
	t.Helper()
	net, err := campus.NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.New(cfg.Start)
	campus.NewDynamics(net, eng)
	pfx, err := netaddr.NewPrefix(net.Plan().Base(), 16)
	if err != nil {
		t.Fatal(err)
	}
	return net, eng, pfx
}

func smallConfig() campus.Config {
	cfg := campus.DefaultSemesterConfig()
	cfg.StaticAddrs, cfg.StaticSubnets = 2048, 8
	cfg.DHCPAddrs, cfg.WirelessAddrs, cfg.PPPAddrs, cfg.VPNAddrs = 256, 128, 128, 64
	cfg.StaticLiveHosts, cfg.StaticServers, cfg.PopularServers = 400, 200, 8
	cfg.DHCPHosts, cfg.PPPHosts, cfg.VPNHosts, cfg.WirelessHosts = 100, 40, 30, 40
	cfg.FlowsPerDay = 15000
	return cfg
}

// assertInventoriesEqual requires two inventories to be byte-for-byte
// identical: same keys, records, scanners, and roll-ups.
func assertInventoriesEqual(t *testing.T, want, got *Inventory) {
	t.Helper()
	if want.Packets() != got.Packets() {
		t.Fatalf("Packets = %d, want %d", got.Packets(), want.Packets())
	}
	wk, gk := want.Keys(), got.Keys()
	if len(wk) != len(gk) {
		t.Fatalf("%d services, want %d", len(gk), len(wk))
	}
	for i := range wk {
		if wk[i] != gk[i] {
			t.Fatalf("key %d = %v, want %v", i, gk[i], wk[i])
		}
		wr, _ := want.Record(wk[i])
		gr, _ := got.Record(gk[i])
		if !wr.FirstSeen.Equal(gr.FirstSeen) || wr.Flows != gr.Flows || wr.Clients() != gr.Clients() {
			t.Fatalf("record %v differs: {%v %d %d} vs {%v %d %d}", wk[i],
				gr.FirstSeen, gr.Flows, gr.Clients(), wr.FirstSeen, wr.Flows, wr.Clients())
		}
		wp, gp := wr.FirstPeers(), gr.FirstPeers()
		if len(wp) != len(gp) {
			t.Fatalf("record %v first-peer count differs", wk[i])
		}
		for j := range wp {
			if wp[j] != gp[j] {
				t.Fatalf("record %v peer %d differs", wk[i], j)
			}
		}
	}
	ws, gs := want.Scanners(), got.Scanners()
	if len(ws) != len(gs) {
		t.Fatalf("%d scanners, want %d", len(gs), len(ws))
	}
	for i := range ws {
		if ws[i] != gs[i] {
			t.Fatalf("scanner %d = %+v, want %+v", i, gs[i], ws[i])
		}
	}
	wf := want.AddrFirstSeenExcluding(want.ScannerSet(), nil)
	gf := got.AddrFirstSeenExcluding(got.ScannerSet(), nil)
	if len(wf) != len(gf) {
		t.Fatalf("AddrFirstSeenExcluding size differs: %d vs %d", len(gf), len(wf))
	}
	for a, wt := range wf {
		if gt, ok := gf[a]; !ok || !gt.Equal(wt) {
			t.Fatalf("AddrFirstSeenExcluding[%v] = %v, want %v", a, gt, wt)
		}
	}
}

// TestSharded18dMatchesSequential is the acceptance check for the sharded
// ingest pipeline: over the full 18-day semester campaign, an 8-shard
// ShardedPassive (with concurrent workers) must produce a snapshot
// deterministically identical to the single-threaded PassiveDiscoverer
// consuming the same monitored stream.
func TestSharded18dMatchesSequential(t *testing.T) {
	days := 18.0
	cfg := campus.DefaultSemesterConfig()
	if testing.Short() {
		days = 2
	}
	net, eng, pfx := buildCampus(t, cfg)

	plain := core.NewPassiveDiscoverer(pfx, campus.SelectedUDPPorts)
	sharded := core.NewShardedPassive(pfx, campus.SelectedUDPPorts, 8)
	sharded.Run(context.Background())

	both := capture.Tee{plain, sharded}
	tap1, err := capture.NewTap(capture.LinkCommercial1, capture.PaperFilter, nil, both)
	if err != nil {
		t.Fatal(err)
	}
	tap2, err := capture.NewTap(capture.LinkCommercial2, capture.PaperFilter, nil, both)
	if err != nil {
		t.Fatal(err)
	}
	mon := capture.NewMonitor(capture.NewAssigner(pfx, net.AcademicClients()), tap1, tap2)
	traffic.NewGenerator(net, eng, mon)

	eng.RunUntil(cfg.Start.Add(time.Duration(days * 24 * float64(time.Hour))))
	sharded.Close()

	want, got := plain.Snapshot(), sharded.Snapshot()
	if want.Len() == 0 || len(want.Scanners()) == 0 {
		t.Fatalf("degenerate campaign: %d services, %d scanners", want.Len(), len(want.Scanners()))
	}
	assertInventoriesEqual(t, want, got)
	t.Logf("%d packets, %d services, %d scanners: sharded(8) == sequential", want.Packets(), want.Len(), len(want.Scanners()))
}

// recordTrace simulates a small campaign and returns it as an in-memory
// pcap of the monitored links.
func recordTrace(t *testing.T, days float64) (*bytes.Buffer, netaddr.Prefix) {
	t.Helper()
	cfg := smallConfig()
	net, eng, pfx := buildCampus(t, cfg)
	var buf bytes.Buffer
	w := trace.NewWriter(&buf, trace.LinkTypeRaw, 128)
	rec := capture.NewRecorder(w)
	tap1, err := capture.NewTap(capture.LinkCommercial1, capture.PaperFilter, nil, rec)
	if err != nil {
		t.Fatal(err)
	}
	tap2, err := capture.NewTap(capture.LinkCommercial2, capture.PaperFilter, nil, rec)
	if err != nil {
		t.Fatal(err)
	}
	mon := capture.NewMonitor(capture.NewAssigner(pfx, net.AcademicClients()), tap1, tap2)
	traffic.NewGenerator(net, eng, mon)
	eng.RunUntil(cfg.Start.Add(time.Duration(days * 24 * float64(time.Hour))))
	if err := rec.Err(); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return &buf, pfx
}

func TestDiscoverShardCountsAgree(t *testing.T) {
	buf, pfx := recordTrace(t, 1.5)
	raw := buf.Bytes()

	var ref *Inventory
	for _, shards := range []int{1, 2, 8} {
		inv, err := Discover(context.Background(), bytes.NewReader(raw), Config{
			Campus: pfx.String(),
			Shards: shards,
		})
		if err != nil {
			t.Fatal(err)
		}
		if inv.Len() == 0 {
			t.Fatal("replay discovered nothing")
		}
		if ref == nil {
			ref = inv
			continue
		}
		assertInventoriesEqual(t, ref, inv)
	}
}

func TestDiscoverWithFilter(t *testing.T) {
	buf, pfx := recordTrace(t, 1)
	raw := buf.Bytes()

	all, err := Discover(context.Background(), bytes.NewReader(raw), Config{Campus: pfx.String()})
	if err != nil {
		t.Fatal(err)
	}
	tcpOnly, err := Discover(context.Background(), bytes.NewReader(raw), Config{
		Campus: pfx.String(),
		Filter: "synack",
	})
	if err != nil {
		t.Fatal(err)
	}
	if tcpOnly.Packets() >= all.Packets() {
		t.Errorf("filter dropped nothing: %d vs %d packets", tcpOnly.Packets(), all.Packets())
	}
	for _, k := range tcpOnly.Keys() {
		if k.Proto != 6 {
			t.Fatalf("synack filter let %v through", k)
		}
	}
	if len(tcpOnly.Scanners()) != 0 {
		t.Error("synack-only stream cannot contain scan evidence")
	}
}

func TestDiscoverErrors(t *testing.T) {
	if _, err := Discover(context.Background(), bytes.NewReader(nil), Config{}); err == nil {
		t.Error("missing campus accepted")
	}
	if _, err := Discover(context.Background(), bytes.NewReader([]byte("not a pcap")),
		Config{Campus: "128.125.0.0/16"}); err == nil {
		t.Error("garbage trace accepted")
	}
	buf, pfx := recordTrace(t, 0.25)
	raw := buf.Bytes()
	if _, err := Discover(context.Background(), bytes.NewReader(raw), Config{
		Campus: pfx.String(),
		Filter: "bogus ((",
	}); err == nil {
		t.Error("bad filter accepted")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if inv, err := Discover(ctx, bytes.NewReader(raw), Config{Campus: pfx.String()}); err == nil || inv != nil {
		t.Error("cancelled Discover returned an inventory")
	}
}

// fixedTimeBackend pins the probe timestamp handed to an inner backend, so
// a wall-clock sweep classifies the simulated campus as of a fixed moment.
type fixedTimeBackend struct {
	inner probe.Backend
	at    time.Time
}

func (b fixedTimeBackend) ProbeTCP(_ time.Time, addr netaddr.V4, port uint16) probe.TCPState {
	return b.inner.ProbeTCP(b.at, addr, port)
}

func (b fixedTimeBackend) ProbeUDP(_ time.Time, addr netaddr.V4, port uint16) probe.UDPState {
	return b.inner.ProbeUDP(b.at, addr, port)
}

// TestHybridFacade runs the full hybrid engine end to end: simulated
// border traffic into the passive side, a concurrent sweep of the same
// campus into the active side, and a reconciled snapshot with provenance.
func TestHybridFacade(t *testing.T) {
	cfg := smallConfig()
	net, eng, pfx := buildCampus(t, cfg)
	h, err := NewHybrid(Config{
		Campus:   pfx.String(),
		Shards:   4,
		Academic: net.AcademicClients(),
		Scan: &ScanOptions{
			Targets: net.Plan().ProbeTargets(),
			Workers: 8,
			Backend: fixedTimeBackend{inner: &probe.SimBackend{Net: net}, at: cfg.Start},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if h.Scheduler() == nil {
		t.Fatal("hybrid facade has no scheduler")
	}
	h.Run(context.Background())
	traffic.NewGenerator(net, eng, h)
	eng.RunUntil(cfg.Start.Add(12 * time.Hour))

	rep, err := h.Scan(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Truncated || rep.OpenAddrs().Len() == 0 {
		t.Fatalf("sweep degenerate: truncated=%v open=%d", rep.Truncated, rep.OpenAddrs().Len())
	}
	h.Close()

	inv := h.Snapshot()
	if !inv.Hybrid() {
		t.Fatal("snapshot is not hybrid")
	}
	if len(inv.Scans()) != 1 {
		t.Fatalf("snapshot has %d sweeps, want 1", len(inv.Scans()))
	}
	counts := inv.ProvenanceCounts()
	total := 0
	for _, n := range counts {
		total += n
	}
	if total != inv.Len() || inv.Len() == 0 {
		t.Fatalf("provenance counts %v do not cover the %d services", counts, inv.Len())
	}
	// Both techniques must contribute: passive-only (firewalled/popular)
	// and active-only (idle servers) are the paper's headline classes.
	if counts[core.PassiveOnly] == 0 || counts[core.ActiveOnly] == 0 {
		t.Errorf("degenerate reconciliation: counts = %v", counts)
	}
	// NewHybrid without scan options must refuse.
	if _, err := NewHybrid(Config{Campus: pfx.String()}); err == nil {
		t.Error("NewHybrid accepted a config without Scan")
	}
	if _, err := NewPipeline(Config{Campus: pfx.String(), Scan: &ScanOptions{}}); err == nil {
		t.Error("NewPipeline accepted scan options without targets")
	}
}

// TestPipelineFacadeMatchesHandWiring drives the facade pipeline and the
// classic hand-wired assembly from identical simulations and requires the
// same inventory from both.
func TestPipelineFacadeMatchesHandWiring(t *testing.T) {
	cfg := smallConfig()

	// Hand-wired run.
	net1, eng1, pfx := buildCampus(t, cfg)
	plain := core.NewPassiveDiscoverer(pfx, campus.SelectedUDPPorts)
	tap1, err := capture.NewTap(capture.LinkCommercial1, capture.PaperFilter, nil, plain)
	if err != nil {
		t.Fatal(err)
	}
	tap2, err := capture.NewTap(capture.LinkCommercial2, capture.PaperFilter, nil, plain)
	if err != nil {
		t.Fatal(err)
	}
	traffic.NewGenerator(net1, eng1,
		capture.NewMonitor(capture.NewAssigner(pfx, net1.AcademicClients()), tap1, tap2))
	eng1.RunUntil(cfg.Start.Add(36 * time.Hour))

	// Facade run over an identically-seeded simulation, shard workers on.
	net2, eng2, _ := buildCampus(t, cfg)
	pl, err := NewPipeline(Config{
		Campus:   pfx.String(),
		Shards:   4,
		Academic: net2.AcademicClients(),
	})
	if err != nil {
		t.Fatal(err)
	}
	pl.Run(context.Background())
	traffic.NewGenerator(net2, eng2, pl)
	eng2.RunUntil(cfg.Start.Add(36 * time.Hour))
	pl.Flush()
	defer pl.Close()

	assertInventoriesEqual(t, plain.Snapshot(), pl.Snapshot())

	// The monitor's taps expose concurrency-safe counters.
	tap, ok := pl.Monitor().Tap(capture.LinkCommercial1)
	if !ok || tap.Seen() == 0 || tap.Delivered() == 0 {
		t.Error("facade tap counters empty")
	}
}

// TestFacadeLiveSnapshotAndWatch drives the facade pipeline with the
// engine running and checks the live surface: mid-campaign snapshots are
// consistent and non-terminal, the final snapshot matches a hand-wired
// single-threaded run, and the event stream delivers exactly one
// ServiceDiscovered per service in the final inventory.
func TestFacadeLiveSnapshotAndWatch(t *testing.T) {
	cfg := smallConfig()

	// Hand-wired single-threaded reference.
	net1, eng1, pfx := buildCampus(t, cfg)
	plain := core.NewPassiveDiscoverer(pfx, campus.SelectedUDPPorts)
	tapA, err := capture.NewTap(capture.LinkCommercial1, capture.PaperFilter, nil, plain)
	if err != nil {
		t.Fatal(err)
	}
	tapB, err := capture.NewTap(capture.LinkCommercial2, capture.PaperFilter, nil, plain)
	if err != nil {
		t.Fatal(err)
	}
	traffic.NewGenerator(net1, eng1,
		capture.NewMonitor(capture.NewAssigner(pfx, net1.AcademicClients()), tapA, tapB))
	eng1.RunUntil(cfg.Start.Add(24 * time.Hour))

	// Facade run with shard workers on and a watcher attached.
	net2, eng2, _ := buildCampus(t, cfg)
	pl, err := NewPipeline(Config{
		Campus:   pfx.String(),
		Shards:   4,
		Academic: net2.AcademicClients(),
	})
	if err != nil {
		t.Fatal(err)
	}
	pl.Run(context.Background())
	sub := pl.Subscribe(1 << 16)
	traffic.NewGenerator(net2, eng2, pl)

	// Mid-campaign live snapshots: no flush, no close, engine keeps going.
	var mids []*Inventory
	for _, hours := range []int{6, 12, 18} {
		eng2.RunUntil(cfg.Start.Add(time.Duration(hours) * time.Hour))
		mids = append(mids, pl.Snapshot())
	}
	eng2.RunUntil(cfg.Start.Add(24 * time.Hour))
	final := pl.Snapshot()
	pl.Close()

	for i := 1; i < len(mids); i++ {
		if mids[i].Len() < mids[i-1].Len() || mids[i].Packets() < mids[i-1].Packets() {
			t.Fatal("live snapshots went backwards")
		}
	}
	if final.Len() < mids[len(mids)-1].Len() {
		t.Fatal("final snapshot smaller than a mid-campaign one")
	}
	assertInventoriesEqual(t, plain.Snapshot(), final)

	// Event stream: exactly one discovery per final-inventory service.
	if sub.Dropped() != 0 {
		t.Fatalf("watcher dropped %d events", sub.Dropped())
	}
	seen := make(map[ServiceKey]int)
	for ev := range sub.Events() {
		if ev.Kind == EventServiceDiscovered {
			seen[ev.Key]++
		}
	}
	keys := final.Keys()
	if len(seen) != len(keys) {
		t.Fatalf("%d distinct discovery events, inventory has %d services", len(seen), len(keys))
	}
	for _, key := range keys {
		if seen[key] != 1 {
			t.Fatalf("service %v discovered %d times", key, seen[key])
		}
	}
}

// TestFacadeWatchContextCancel checks that cancelling the Watch context
// ends the event channel even while the engine stays open.
func TestFacadeWatchContextCancel(t *testing.T) {
	pl, err := NewPipeline(Config{Campus: "128.125.0.0/16", Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer pl.Close()
	ctx, cancel := context.WithCancel(context.Background())
	ch := pl.Watch(ctx)
	cancel()
	select {
	case _, ok := <-ch:
		if ok {
			t.Fatal("event before any traffic")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Watch channel not closed after context cancellation")
	}
}

// TestPipelineReplayMatchesDiscover replays a recorded trace through a
// live pipeline (Replay bypasses the taps, like Discover) and requires
// the same inventory Discover produces, while snapshots taken during the
// replay stay consistent.
func TestPipelineReplayMatchesDiscover(t *testing.T) {
	buf, pfx := recordTrace(t, 1)
	raw := buf.Bytes()

	want, err := Discover(context.Background(), bytes.NewReader(raw), Config{
		Campus: pfx.String(),
		Shards: 4,
	})
	if err != nil {
		t.Fatal(err)
	}

	pl, err := NewPipeline(Config{Campus: pfx.String(), Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	pl.Run(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := pl.Replay(context.Background(), bytes.NewReader(raw))
		done <- err
	}()
	// Live snapshots while the replay streams in.
	deadline := time.After(30 * time.Second)
	for {
		inv := pl.Snapshot()
		if inv.Packets() > want.Packets() {
			t.Fatalf("live snapshot overshot: %d > %d packets", inv.Packets(), want.Packets())
		}
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
			pl.Close()
			assertInventoriesEqual(t, want, pl.Snapshot())
			return
		case <-deadline:
			t.Fatal("replay did not finish")
		default:
		}
	}
}
